package etl

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Parser telemetry: throughput, record outcomes and lenient-recovery
// activity, labeled by skip cause so trace quality is visible at runtime
// (etl_skipped_records_total{cause=...}).
var (
	mParseBytes    = telemetry.NewCounter("etl_parsed_bytes_total", "bytes consumed by the raw-log parser")
	mParseRecords  = telemetry.NewCounter("etl_records_total", "raw-log records decoded successfully")
	mParseEvents   = telemetry.NewCounter("etl_events_total", "events recovered across all processes")
	mParseSkipped  = telemetry.NewCounterVec("etl_skipped_records_total", "records skipped by the lenient parser", "cause")
	mParseDropped  = telemetry.NewCounter("etl_dropped_stacks_total", "stack walks dropped (orphaned, superseded or left pending)")
	mResyncBytes   = telemetry.NewCounter("etl_resync_bytes_total", "bytes discarded while resynchronizing after corrupt records")
	mParseFailures = telemetry.NewCounter("etl_parse_failures_total", "parses rejected outright (strict error or error budget exhausted)")
)

// DefaultMaxErrors is the lenient parser's record-error budget when
// ParseOpts.MaxErrors is zero.
const DefaultMaxErrors = 1024

// ErrTooManyErrors is wrapped by the error a lenient parse returns when
// the stream produced more malformed records than ParseOpts.MaxErrors
// allows — at that point the input is treated as hopeless rather than
// noisy.
var ErrTooManyErrors = errors.New("etl: too many corrupt records")

// ParseOpts controls how Parse treats malformed input.
type ParseOpts struct {
	// Lenient makes the parser recover from malformed records: instead
	// of aborting, it logs the failure, scans forward for the next
	// plausible record boundary and resumes. Strict mode (the zero
	// value) rejects the whole stream on the first error.
	Lenient bool
	// MaxErrors caps how many record failures a lenient parse tolerates
	// before giving up with ErrTooManyErrors. Zero selects
	// DefaultMaxErrors; a negative value removes the cap.
	MaxErrors int
}

// ParseError is one record the lenient parser had to skip.
type ParseError struct {
	// Offset is the byte position of the record's tag in the stream
	// (for failures that precede any tag, the position of the failure).
	Offset int64
	// Tag is the record tag being parsed, 0 when none was read.
	Tag byte
	// Cause is the underlying decode or correlation failure.
	Cause error
	// ResyncBytes is how many bytes the parser discarded after the
	// failure before finding the next plausible record boundary (zero
	// for failures that left the stream at a boundary).
	ResyncBytes int64
}

func (e ParseError) Error() string {
	return fmt.Sprintf("etl: record 0x%02x at offset %d: %v", e.Tag, e.Offset, e.Cause)
}

func (e ParseError) Unwrap() error { return e.Cause }

// RawFile is the parsed content of a raw event-trace-log: the per-process
// stack-event correlated logs, ready for application slicing.
type RawFile struct {
	byPID map[int]*trace.Log
	// Dropped counts stack records that could not be correlated with a
	// pending event and were discarded.
	Dropped int
	// ErrorLog records every record a lenient parse skipped, in stream
	// order. Always empty after a strict parse.
	ErrorLog []ParseError
}

// PIDs returns the traced process ids in ascending order.
func (f *RawFile) PIDs() []int {
	out := make([]int, 0, len(f.byPID))
	for pid := range f.byPID {
		out = append(out, pid)
	}
	sort.Ints(out)
	return out
}

// TotalEvents returns the number of events recovered across all
// processes.
func (f *RawFile) TotalEvents() int {
	var n int
	for _, l := range f.byPID {
		n += l.Len()
	}
	return n
}

// Slice returns the stack-event correlated log of one process — the
// paper's per-application slicing step.
func (f *RawFile) Slice(pid int) (*trace.Log, error) {
	l, ok := f.byPID[pid]
	if !ok {
		return nil, fmt.Errorf("etl: no process %d in file", pid)
	}
	return l, nil
}

// SliceApp returns the log of the process running the named application.
func (f *RawFile) SliceApp(app string) (*trace.Log, error) {
	for _, l := range f.byPID {
		if l.App == app {
			return l, nil
		}
	}
	return nil, fmt.Errorf("etl: no process running %q in file", app)
}

// Parse reads a raw event-trace-log, correlates each stack-walk record
// with the event that triggered it, resolves every frame against the
// process's module map, and slices the stream per process. It is strict:
// any malformed record rejects the whole file (see ParseWith for the
// lenient variant).
func Parse(r io.Reader) (*RawFile, error) {
	return ParseWith(r, ParseOpts{})
}

// semanticError marks a record whose bytes decoded cleanly but whose
// content could not be used (undeclared pid, duplicate process). The
// stream position is at the next record boundary, so lenient recovery
// skips the resynchronization scan.
type semanticError struct{ err error }

func (e *semanticError) Error() string { return e.err.Error() }
func (e *semanticError) Unwrap() error { return e.err }

func semantic(err error) error { return &semanticError{err: err} }

type parser struct {
	rd   recordSource
	opts ParseOpts
	f    *RawFile
	// pending holds, per pid<<32|tid, the index of the event awaiting
	// its stack record.
	pending pendingSet
	// records counts decoded records locally; the parse wrappers flush
	// it to mParseRecords once instead of bumping the shared atomic on
	// every record.
	records uint64
	// slab, when non-nil, backs stack walks with arena-carved frame
	// slices instead of one allocation per stack record (the zero-copy
	// ParseBytes path).
	slab *Slab
	// stackCache memoises resolved stack walks by (pid, raw frame bytes)
	// on the zero-copy path, where the raw bytes can be peeked without
	// copying. Live traces repeat call sites constantly, so most stack
	// records skip symbol resolution entirely. Cached walks are shared
	// between the events that produced identical raw stacks — parse
	// output is read-only by contract.
	stackCache map[string]trace.StackWalk
	keyBuf     []byte
}

func pendingKey(pid, tid int) uint64 { return uint64(pid)<<32 | uint64(uint32(tid)) }

// pendingSet maps pending keys to event indices. Real traces have a
// handful of live threads at a time, so a linear-scanned array beats a
// map on the hot path; pathological streams (every event on a new
// thread) spill to a map rather than degrading quadratically.
type pendingSet struct {
	keys [pendingSpill]uint64
	idxs [pendingSpill]int
	n    int
	m    map[uint64]int // non-nil once the array spilled
}

// pendingSpill is the array capacity beyond which pendingSet spills to
// a map.
const pendingSpill = 32

func (s *pendingSet) get(k uint64) (int, bool) {
	for i := 0; i < s.n; i++ {
		if s.keys[i] == k {
			return s.idxs[i], true
		}
	}
	if s.m != nil {
		idx, ok := s.m[k]
		return idx, ok
	}
	return 0, false
}

// put inserts or replaces the entry for k and reports whether k was
// already present (a dangling stack request).
func (s *pendingSet) put(k uint64, idx int) bool {
	for i := 0; i < s.n; i++ {
		if s.keys[i] == k {
			s.idxs[i] = idx
			return true
		}
	}
	if s.m != nil {
		if _, ok := s.m[k]; ok {
			s.m[k] = idx
			return true
		}
	}
	if s.n < pendingSpill {
		s.keys[s.n], s.idxs[s.n] = k, idx
		s.n++
		return false
	}
	if s.m == nil {
		s.m = make(map[uint64]int)
	}
	s.m[k] = idx
	return false
}

func (s *pendingSet) del(k uint64) {
	for i := 0; i < s.n; i++ {
		if s.keys[i] == k {
			s.n--
			s.keys[i], s.idxs[i] = s.keys[s.n], s.idxs[s.n]
			return
		}
	}
	if s.m != nil {
		delete(s.m, k)
	}
}

func (s *pendingSet) len() int { return s.n + len(s.m) }

// errTruncatedStream marks a lenient parse that ran out of input before
// the end record.
var errTruncatedStream = errors.New("stream truncated before end record")

// errEarlyEnd marks an end record observed before the end of input — a
// corrupted byte masquerading as a terminator.
var errEarlyEnd = errors.New("end record before end of input")

// skipCause labels a skipped record for etl_skipped_records_total.
func skipCause(err error) string {
	var sem *semanticError
	switch {
	case errors.Is(err, errTruncatedStream):
		return "truncated"
	case errors.Is(err, errEarlyEnd):
		return "early_end"
	case errors.As(err, &sem):
		msg := sem.err.Error()
		switch {
		case strings.Contains(msg, "duplicate process"):
			return "duplicate_process"
		case strings.Contains(msg, "undeclared pid"):
			return "undeclared_pid"
		}
		return "semantic"
	default:
		return "corrupt"
	}
}

// ParseWith is Parse with explicit fault-tolerance options. In lenient
// mode a malformed record is logged in RawFile.ErrorLog and the parser
// resynchronizes on the next plausible record boundary; truncated
// streams yield whatever was recovered up to the cut.
func ParseWith(r io.Reader, opts ParseOpts) (*RawFile, error) {
	_, sp := telemetry.StartSpan(context.Background(), "etl/parse")
	defer sp.End()
	if opts.MaxErrors == 0 {
		opts.MaxErrors = DefaultMaxErrors
	}
	p := &parser{
		rd:   &reader{r: bufio.NewReader(r)},
		opts: opts,
		f:    &RawFile{byPID: make(map[int]*trace.Log)},
	}
	f, err := p.parse()
	mParseBytes.Add(uint64(p.rd.offset()))
	mParseRecords.Add(p.records)
	if err != nil {
		mParseFailures.Inc()
		return nil, err
	}
	mParseEvents.Add(uint64(f.TotalEvents()))
	mParseDropped.Add(uint64(f.Dropped))
	return f, nil
}

// parse runs the record loop; the ParseWith wrapper layers telemetry on
// top of it.
func (p *parser) parse() (*RawFile, error) {
	opts := p.opts

	// The header is the anchor of the whole stream: without a valid
	// magic and version there is nothing to resynchronize against, so
	// it is strict even in lenient mode.
	head := make([]byte, len(magic))
	if err := p.rd.full(head); err != nil {
		return nil, err
	}
	if string(head) != magic {
		return nil, corrupt(fmt.Errorf("bad magic %q", head))
	}
	ver, err := p.rd.u16()
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, corrupt(fmt.Errorf("unsupported version %d", ver))
	}

	for {
		tagOff := p.rd.offset()
		tag, err := p.rd.u8()
		if err != nil {
			if !opts.Lenient {
				return nil, err
			}
			// Truncated stream: keep what was recovered, note the
			// missing terminator.
			if nerr := p.note(tagOff, 0, errTruncatedStream); nerr != nil {
				return nil, nerr
			}
			p.f.Dropped += p.pending.len()
			return p.f, nil
		}
		if tag == recEnd {
			if opts.Lenient {
				// An end record is only trustworthy at end of input: a
				// corrupted byte that happens to read 0xFF mid-stream must
				// not silently discard everything after it.
				if len(p.rd.peek(1)) > 0 {
					if nerr := p.note(tagOff, tag, corrupt(errEarlyEnd)); nerr != nil {
						return nil, nerr
					}
					before := p.rd.offset()
					p.resync()
					p.f.ErrorLog[len(p.f.ErrorLog)-1].ResyncBytes = p.rd.offset() - before
					mResyncBytes.Add(uint64(p.rd.offset() - before))
					continue
				}
			}
			p.f.Dropped += p.pending.len()
			return p.f, nil
		}
		if err := p.record(tag); err != nil {
			var sem *semanticError
			isSem := errors.As(err, &sem)
			if !opts.Lenient {
				if isSem {
					return nil, sem.err
				}
				return nil, err
			}
			if nerr := p.note(tagOff, tag, err); nerr != nil {
				return nil, nerr
			}
			if !isSem {
				before := p.rd.offset()
				p.resync()
				p.f.ErrorLog[len(p.f.ErrorLog)-1].ResyncBytes = p.rd.offset() - before
				mResyncBytes.Add(uint64(p.rd.offset() - before))
			}
			continue
		}
		p.records++
	}
}

// note logs one skipped record, failing the parse once the error budget
// is exhausted.
func (p *parser) note(off int64, tag byte, cause error) error {
	mParseSkipped.With(skipCause(cause)).Inc()
	var sem *semanticError
	if errors.As(cause, &sem) {
		cause = sem.err
	}
	p.f.ErrorLog = append(p.f.ErrorLog, ParseError{Offset: off, Tag: tag, Cause: cause})
	if p.opts.MaxErrors > 0 && len(p.f.ErrorLog) > p.opts.MaxErrors {
		return fmt.Errorf("%w: %w: %d records skipped", ErrCorrupt, ErrTooManyErrors, len(p.f.ErrorLog))
	}
	return nil
}

// record parses one record body for the given tag.
func (p *parser) record(tag byte) error {
	switch tag {
	case recProcess:
		pid, app, mm, err := parseProcess(p.rd)
		if err != nil {
			return err
		}
		if _, dup := p.f.byPID[pid]; dup {
			return semantic(corrupt(fmt.Errorf("duplicate process record for pid %d", pid)))
		}
		p.f.byPID[pid] = &trace.Log{App: app, PID: pid, Modules: mm}
		return nil

	case recEvent:
		return p.event()

	case recStack:
		return p.stack()

	default:
		return corrupt(fmt.Errorf("unknown record tag 0x%02x", tag))
	}
}

func (p *parser) event() error {
	// Fast path: the 19-byte fixed body decoded from one bounds check on
	// the in-memory stream. A short remainder falls through to the
	// field-by-field loop so truncation errors keep the reference
	// offsets.
	if br, ok := p.rd.(*byteReader); ok && br.pos+19 <= len(br.data) {
		b := br.data[br.pos : br.pos+19 : br.pos+19]
		br.pos += 19
		return p.eventDecoded(
			binary.LittleEndian.Uint16(b),
			int64(binary.LittleEndian.Uint64(b[2:])),
			binary.LittleEndian.Uint32(b[10:]),
			binary.LittleEndian.Uint32(b[14:]),
			b[18])
	}
	rd := p.rd
	typ, err := rd.u16()
	if err != nil {
		return err
	}
	ns, err := rd.i64()
	if err != nil {
		return err
	}
	pid, err := rd.u32()
	if err != nil {
		return err
	}
	tid, err := rd.u32()
	if err != nil {
		return err
	}
	flags, err := rd.u8()
	if err != nil {
		return err
	}
	return p.eventDecoded(typ, ns, pid, tid, flags)
}

// eventDecoded applies one decoded event record to the parse state.
func (p *parser) eventDecoded(typ uint16, ns int64, pid, tid uint32, flags uint8) error {
	l, ok := p.f.byPID[int(pid)]
	if !ok {
		return semantic(corrupt(fmt.Errorf("event for undeclared pid %d", pid)))
	}
	e := trace.Event{
		Seq:  l.Len(),
		Type: trace.EventType(typ),
		Time: time.Unix(0, ns).UTC(),
		PID:  int(pid),
		TID:  int(tid),
	}
	l.Events = append(l.Events, e)
	if flags&flagHasStack != 0 {
		if p.pending.put(pendingKey(int(pid), int(tid)), l.Len()-1) {
			p.f.Dropped++
		}
	}
	return nil
}

func (p *parser) stack() error {
	rd := p.rd
	var pid, tid uint32
	var n uint16
	if br, ok := rd.(*byteReader); ok && br.pos+10 <= len(br.data) {
		b := br.data[br.pos : br.pos+10 : br.pos+10]
		br.pos += 10
		pid = binary.LittleEndian.Uint32(b)
		tid = binary.LittleEndian.Uint32(b[4:])
		n = binary.LittleEndian.Uint16(b[8:])
	} else {
		var err error
		if pid, err = rd.u32(); err != nil {
			return err
		}
		if tid, err = rd.u32(); err != nil {
			return err
		}
		if n, err = rd.u16(); err != nil {
			return err
		}
	}
	if int(n) > maxFrames {
		return corrupt(fmt.Errorf("stack of %d frames exceeds limit", n))
	}
	// Zero-copy fast path: when the whole frame array is available to
	// peek, look the raw bytes up in the per-parse cache and reuse the
	// already-resolved walk. Short peeks (truncation) and the streaming
	// reader fall through to the byte-by-byte loop, whose error
	// positions and semantics stay the reference behaviour.
	var cacheable bool
	if p.slab != nil {
		raw := rd.peek(8 * int(n))
		if len(raw) == 8*int(n) {
			cacheable = true
			p.keyBuf = append(p.keyBuf[:0], byte(pid), byte(pid>>8), byte(pid>>16), byte(pid>>24))
			p.keyBuf = append(p.keyBuf, raw...)
			if cached, ok := p.stackCache[string(p.keyBuf)]; ok {
				if err := rd.discard(8 * int(n)); err != nil {
					return err
				}
				return p.correlateStack(int(pid), int(tid), cached, true, false)
			}
		}
	}
	stack := p.allocStack(int(n))
	for i := range stack {
		addr, err := rd.u64()
		if err != nil {
			return err
		}
		stack[i].Addr = addr
	}
	return p.correlateStack(int(pid), int(tid), stack, false, cacheable)
}

// correlateStack attaches a stack walk to the event awaiting it. A
// resolved=false walk still holds raw addresses and is resolved here;
// when remember is set the resolved walk is memoised under the key left
// in p.keyBuf by the caller.
func (p *parser) correlateStack(pid, tid int, stack trace.StackWalk, resolved, remember bool) error {
	l, ok := p.f.byPID[pid]
	if !ok {
		return semantic(corrupt(fmt.Errorf("stack for undeclared pid %d", pid)))
	}
	k := pendingKey(pid, tid)
	idx, ok := p.pending.get(k)
	if !ok {
		// Orphan stack walk: no event awaits it. Real parsers
		// tolerate these (lost events under load); drop it.
		p.f.Dropped++
		return nil
	}
	p.pending.del(k)
	if !resolved {
		stack = l.Modules.ResolveStack(stack)
	}
	if remember {
		if p.stackCache == nil {
			p.stackCache = make(map[string]trace.StackWalk)
		}
		p.stackCache[string(p.keyBuf)] = stack
	}
	l.Events[idx].Stack = stack
	return nil
}

// allocStack returns a stack-walk buffer of n frames: carved from the
// parse's frame slab when one is attached, otherwise allocated. Every
// frame is fully overwritten before use (Addr here, Module/Function by
// ResolveStack), so slab reuse needs no zeroing.
func (p *parser) allocStack(n int) trace.StackWalk {
	if p.slab == nil {
		return make(trace.StackWalk, n)
	}
	return p.slab.alloc(n)
}

// resync advances the stream to the next plausible record boundary
// after a structural failure, byte by byte. It stops at end of input;
// the main loop then records the truncation.
func (p *parser) resync() {
	for {
		b := p.rd.peek(resyncPeek)
		if len(b) == 0 {
			return
		}
		if p.plausibleBoundary(b) {
			return
		}
		if p.rd.discard(1) != nil {
			return
		}
	}
}

// resyncPeek is the lookahead window of the resynchronization scan:
// enough for the largest fixed-size validity check (a full event record
// of 20 bytes, or a process-record prefix plus a few name bytes).
const resyncPeek = 32

// plausibleBoundary reports whether the peeked bytes look like the
// start of a valid record. The checks trade a small false-negative rate
// (a valid boundary can be rejected when its fields happen to look
// corrupt) for a very low false-positive rate on garbage: random bytes
// must name a known tag AND satisfy per-record invariants such as a
// declared pid, a bounded frame count or a printable process name.
func (p *parser) plausibleBoundary(b []byte) bool {
	switch b[0] {
	case recEnd:
		// recEnd terminates the stream, so it is only plausible as the
		// final byte of the input.
		return len(b) == 1

	case recEvent:
		// tag + type u16 + time i64 + pid u32 + tid u32 + flags u8
		if len(b) < 20 {
			return false
		}
		typ := binary.LittleEndian.Uint16(b[1:3])
		ns := int64(binary.LittleEndian.Uint64(b[3:11]))
		pid := binary.LittleEndian.Uint32(b[11:15])
		flags := b[19]
		if typ >= plausibleMaxEventType || ns < 0 || flags > flagHasStack {
			return false
		}
		_, ok := p.f.byPID[int(pid)]
		return ok

	case recStack:
		// tag + pid u32 + tid u32 + frame count u16
		if len(b) < 11 {
			return false
		}
		pid := binary.LittleEndian.Uint32(b[1:5])
		n := binary.LittleEndian.Uint16(b[9:11])
		if int(n) > maxFrames {
			return false
		}
		_, ok := p.f.byPID[int(pid)]
		return ok

	case recProcess:
		// tag + pid u32 + app string (u16 length prefix)
		if len(b) < 7 {
			return false
		}
		n := int(binary.LittleEndian.Uint16(b[5:7]))
		if n == 0 || n > maxString {
			return false
		}
		name := b[7:]
		if len(name) > n {
			name = name[:n]
		}
		for _, c := range name {
			if c < 0x20 || c > 0x7e {
				return false
			}
		}
		return true
	}
	return false
}

// plausibleMaxEventType bounds the event-type field during
// resynchronization. It is deliberately far above the real type count so
// the format can grow, while still rejecting the vast majority of random
// 16-bit values.
const plausibleMaxEventType = 1024

// parseProcess reads the body of a recProcess record.
func parseProcess(rd recordSource) (int, string, *trace.ModuleMap, error) {
	pid, err := rd.u32()
	if err != nil {
		return 0, "", nil, err
	}
	app, err := rd.str()
	if err != nil {
		return 0, "", nil, err
	}
	nMods, err := rd.u32()
	if err != nil {
		return 0, "", nil, err
	}
	const maxModules = 4096
	if nMods > maxModules {
		return 0, "", nil, corrupt(fmt.Errorf("module count %d exceeds limit", nMods))
	}
	mods := make([]*trace.Module, 0, nMods)
	for i := uint32(0); i < nMods; i++ {
		name, err := rd.str()
		if err != nil {
			return 0, "", nil, err
		}
		kind, err := rd.u8()
		if err != nil {
			return 0, "", nil, err
		}
		base, err := rd.u64()
		if err != nil {
			return 0, "", nil, err
		}
		size, err := rd.u64()
		if err != nil {
			return 0, "", nil, err
		}
		nSyms, err := rd.u32()
		if err != nil {
			return 0, "", nil, err
		}
		const maxSymbols = 1 << 20
		if nSyms > maxSymbols {
			return 0, "", nil, corrupt(fmt.Errorf("symbol count %d exceeds limit", nSyms))
		}
		syms := make([]trace.Symbol, 0, nSyms)
		for j := uint32(0); j < nSyms; j++ {
			sName, err := rd.str()
			if err != nil {
				return 0, "", nil, err
			}
			sAddr, err := rd.u64()
			if err != nil {
				return 0, "", nil, err
			}
			syms = append(syms, trace.Symbol{Name: sName, Addr: sAddr})
		}
		m, err := trace.NewModule(name, trace.ModuleKind(kind), base, size, syms)
		if err != nil {
			return 0, "", nil, corrupt(err)
		}
		mods = append(mods, m)
	}
	mm, err := trace.NewModuleMap(app, mods)
	if err != nil {
		return 0, "", nil, corrupt(err)
	}
	return int(pid), app, mm, nil
}
