package etl

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/trace"
)

// Writer serialises stack-event correlated logs into the raw binary
// event-trace-log format. A Writer may carry several processes; their
// events can be emitted in any order, as real tracing engines interleave
// event streams from concurrent processes.
type Writer struct {
	cw        countingWriter
	started   bool
	processes map[int]bool
	err       error
}

// NewWriter creates a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{
		cw:        countingWriter{w: bufio.NewWriter(w)},
		processes: make(map[int]bool),
	}
}

// begin lazily writes the file header.
func (w *Writer) begin() error {
	if w.err != nil {
		return w.err
	}
	if w.started {
		return nil
	}
	w.started = true
	if _, err := io.WriteString(&w.cw, magic); err != nil {
		return w.fail(err)
	}
	if err := writeU16(&w.cw, version); err != nil {
		return w.fail(err)
	}
	return nil
}

// fail records the first error and returns it; subsequent calls keep
// failing fast.
func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	return w.err
}

// WriteProcess declares a traced process: its PID, application name and
// loaded modules. It must precede the process's events.
func (w *Writer) WriteProcess(pid int, app string, modules []*trace.Module) error {
	if err := w.begin(); err != nil {
		return err
	}
	if w.processes[pid] {
		return w.fail(fmt.Errorf("etl: duplicate process record for pid %d", pid))
	}
	w.processes[pid] = true
	if err := writeU8(&w.cw, recProcess); err != nil {
		return w.fail(err)
	}
	if err := writeU32(&w.cw, uint32(pid)); err != nil {
		return w.fail(err)
	}
	if err := writeString(&w.cw, app); err != nil {
		return w.fail(err)
	}
	if err := writeU32(&w.cw, uint32(len(modules))); err != nil {
		return w.fail(err)
	}
	for _, m := range modules {
		if err := writeString(&w.cw, m.Name); err != nil {
			return w.fail(err)
		}
		if err := writeU8(&w.cw, uint8(m.Kind)); err != nil {
			return w.fail(err)
		}
		if err := writeU64(&w.cw, m.Base); err != nil {
			return w.fail(err)
		}
		if err := writeU64(&w.cw, m.Size); err != nil {
			return w.fail(err)
		}
		syms := m.Symbols()
		if err := writeU32(&w.cw, uint32(len(syms))); err != nil {
			return w.fail(err)
		}
		for _, s := range syms {
			if err := writeString(&w.cw, s.Name); err != nil {
				return w.fail(err)
			}
			if err := writeU64(&w.cw, s.Addr); err != nil {
				return w.fail(err)
			}
		}
	}
	return nil
}

// WriteEvent emits one event record followed, when the event carries a
// stack walk, by its stack record.
func (w *Writer) WriteEvent(e trace.Event) error {
	if err := w.begin(); err != nil {
		return err
	}
	if !w.processes[e.PID] {
		return w.fail(fmt.Errorf("etl: event for undeclared pid %d", e.PID))
	}
	if len(e.Stack) > maxFrames {
		return w.fail(fmt.Errorf("etl: stack of %d frames exceeds limit %d", len(e.Stack), maxFrames))
	}
	if err := writeU8(&w.cw, recEvent); err != nil {
		return w.fail(err)
	}
	if err := writeU16(&w.cw, uint16(e.Type)); err != nil {
		return w.fail(err)
	}
	if err := writeI64(&w.cw, e.Time.UnixNano()); err != nil {
		return w.fail(err)
	}
	if err := writeU32(&w.cw, uint32(e.PID)); err != nil {
		return w.fail(err)
	}
	if err := writeU32(&w.cw, uint32(e.TID)); err != nil {
		return w.fail(err)
	}
	var flags uint8
	if len(e.Stack) > 0 {
		flags |= flagHasStack
	}
	if err := writeU8(&w.cw, flags); err != nil {
		return w.fail(err)
	}
	if len(e.Stack) == 0 {
		return nil
	}
	if err := writeU8(&w.cw, recStack); err != nil {
		return w.fail(err)
	}
	if err := writeU32(&w.cw, uint32(e.PID)); err != nil {
		return w.fail(err)
	}
	if err := writeU32(&w.cw, uint32(e.TID)); err != nil {
		return w.fail(err)
	}
	if err := writeU16(&w.cw, uint16(len(e.Stack))); err != nil {
		return w.fail(err)
	}
	for _, fr := range e.Stack {
		if err := writeU64(&w.cw, fr.Addr); err != nil {
			return w.fail(err)
		}
	}
	return nil
}

// Close terminates and flushes the stream. The Writer must not be used
// afterwards.
func (w *Writer) Close() error {
	if err := w.begin(); err != nil {
		return err
	}
	if err := writeU8(&w.cw, recEnd); err != nil {
		return w.fail(err)
	}
	if err := w.cw.w.Flush(); err != nil {
		return w.fail(err)
	}
	return nil
}

// BytesWritten reports how many bytes have been emitted so far (before
// buffering flushes are accounted, the count covers accepted records).
func (w *Writer) BytesWritten() int64 { return w.cw.n }

// WriteLogs serialises one or more per-process logs into a single raw
// file, merging their event streams in timestamp order the way a system
// tracing engine would interleave concurrent processes.
func WriteLogs(w io.Writer, logs ...*trace.Log) error {
	if len(logs) == 0 {
		return errors.New("etl: no logs to write")
	}
	ew := NewWriter(w)
	type cursor struct {
		log *trace.Log
		idx int
	}
	cursors := make([]*cursor, 0, len(logs))
	for _, l := range logs {
		if l.Modules == nil {
			return fmt.Errorf("etl: log for app %q has no module map", l.App)
		}
		if err := ew.WriteProcess(l.PID, l.App, l.Modules.Modules()); err != nil {
			return err
		}
		cursors = append(cursors, &cursor{log: l})
	}
	for {
		// Pick the cursor with the earliest pending event.
		sort.SliceStable(cursors, func(i, j int) bool {
			ci, cj := cursors[i], cursors[j]
			iDone := ci.idx >= ci.log.Len()
			jDone := cj.idx >= cj.log.Len()
			if iDone != jDone {
				return jDone
			}
			if iDone {
				return false
			}
			return ci.log.Events[ci.idx].Time.Before(cj.log.Events[cj.idx].Time)
		})
		c := cursors[0]
		if c.idx >= c.log.Len() {
			break
		}
		if err := ew.WriteEvent(c.log.Events[c.idx]); err != nil {
			return err
		}
		c.idx++
	}
	return ew.Close()
}
