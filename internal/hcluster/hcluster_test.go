package hcluster

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func matrixFromPoints(t *testing.T, pts []float64) *DistMatrix {
	t.Helper()
	dm, err := NewDistMatrix(len(pts))
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			dm.Set(i, j, math.Abs(pts[i]-pts[j]))
		}
	}
	return dm
}

func TestNewDistMatrixValidation(t *testing.T) {
	if _, err := NewDistMatrix(0); err == nil {
		t.Error("NewDistMatrix(0) succeeded")
	}
	if _, err := NewDistMatrix(-2); err == nil {
		t.Error("NewDistMatrix(-2) succeeded")
	}
}

func TestDistMatrixSymmetry(t *testing.T) {
	dm, err := NewDistMatrix(4)
	if err != nil {
		t.Fatal(err)
	}
	dm.Set(1, 3, 0.5)
	if got := dm.Get(3, 1); got != 0.5 {
		t.Errorf("Get(3,1) = %v, want 0.5", got)
	}
	if got := dm.Get(2, 2); got != 0 {
		t.Errorf("Get(2,2) = %v, want 0", got)
	}
	dm.Set(2, 2, 9) // must be ignored
	if got := dm.Get(2, 2); got != 0 {
		t.Errorf("diagonal mutated: %v", got)
	}
}

func TestDistMatrixValidate(t *testing.T) {
	dm, _ := NewDistMatrix(3)
	dm.Set(0, 1, math.NaN())
	if err := dm.Validate(); err == nil {
		t.Error("Validate accepted NaN")
	}
	dm2, _ := NewDistMatrix(3)
	dm2.Set(0, 1, -1)
	if err := dm2.Validate(); err == nil {
		t.Error("Validate accepted negative distance")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := Cluster(nil, Average); err == nil {
		t.Error("Cluster(nil) succeeded")
	}
	dm, _ := NewDistMatrix(3)
	if _, err := Cluster(dm, Linkage(99)); err == nil {
		t.Error("Cluster with unknown linkage succeeded")
	}
	dm.Set(0, 1, math.Inf(1))
	if _, err := Cluster(dm, Average); err == nil {
		t.Error("Cluster accepted infinite distance")
	}
}

func TestClusterSingleObservation(t *testing.T) {
	dm, _ := NewDistMatrix(1)
	d, err := Cluster(dm, Average)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Merges()) != 0 {
		t.Errorf("merges = %d, want 0", len(d.Merges()))
	}
	labels := d.CutDistance(1)
	if !reflect.DeepEqual(labels, []int{0}) {
		t.Errorf("labels = %v", labels)
	}
}

// Two well-separated groups on a line: {0, 1, 2} and {10, 11}.
func TestClusterTwoGroups(t *testing.T) {
	pts := []float64{0, 1, 2, 10, 11}
	for _, linkage := range []Linkage{Single, Complete, Average, Weighted, Ward} {
		t.Run(linkage.String(), func(t *testing.T) {
			dend, err := Cluster(matrixFromPoints(t, pts), linkage)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(dend.Merges()); got != len(pts)-1 {
				t.Fatalf("merges = %d, want %d", got, len(pts)-1)
			}
			labels := dend.CutK(2)
			if labels[0] != labels[1] || labels[1] != labels[2] {
				t.Errorf("group one split: %v", labels)
			}
			if labels[3] != labels[4] {
				t.Errorf("group two split: %v", labels)
			}
			if labels[0] == labels[3] {
				t.Errorf("groups merged: %v", labels)
			}
		})
	}
}

func TestCutDistanceThresholds(t *testing.T) {
	pts := []float64{0, 1, 2, 10, 11}
	dend, err := Cluster(matrixFromPoints(t, pts), Average)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny threshold: every observation is its own cluster.
	labels := dend.CutDistance(0)
	want := []int{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(labels, want) {
		t.Errorf("CutDistance(0) = %v, want %v", labels, want)
	}
	// Huge threshold: everything merges.
	labels = dend.CutDistance(100)
	for _, l := range labels {
		if l != 0 {
			t.Errorf("CutDistance(100) = %v, want all 0", labels)
			break
		}
	}
	if got := dend.NumClustersAt(0); got != 5 {
		t.Errorf("NumClustersAt(0) = %d, want 5", got)
	}
	if got := dend.NumClustersAt(100); got != 1 {
		t.Errorf("NumClustersAt(100) = %d, want 1", got)
	}
	// A threshold between the within-group and between-group scales
	// yields exactly the two groups.
	labels = dend.CutDistance(3)
	if labels[0] != labels[2] || labels[0] == labels[3] || labels[3] != labels[4] {
		t.Errorf("CutDistance(3) = %v, want two groups", labels)
	}
}

func TestCutKBounds(t *testing.T) {
	pts := []float64{0, 1, 5}
	dend, err := Cluster(matrixFromPoints(t, pts), Complete)
	if err != nil {
		t.Fatal(err)
	}
	if labels := dend.CutK(0); !allEqual(labels) {
		t.Errorf("CutK(0) = %v, want single cluster", labels)
	}
	if labels := dend.CutK(10); !reflect.DeepEqual(labels, []int{0, 1, 2}) {
		t.Errorf("CutK(10) = %v, want singletons", labels)
	}
}

func allEqual(xs []int) bool {
	for _, x := range xs {
		if x != xs[0] {
			return false
		}
	}
	return true
}

// UPGMA on a hand-worked example. Points 0,1 at distance 1 merge first;
// the average distance from {0,1} to 2 is (4+3)/2 = 3.5.
func TestAverageLinkageHandWorked(t *testing.T) {
	dm, _ := NewDistMatrix(3)
	dm.Set(0, 1, 1)
	dm.Set(0, 2, 4)
	dm.Set(1, 2, 3)
	dend, err := Cluster(dm, Average)
	if err != nil {
		t.Fatal(err)
	}
	m := dend.Merges()
	if m[0].A != 0 || m[0].B != 1 || m[0].Distance != 1 || m[0].Size != 2 {
		t.Errorf("merge 0 = %+v, want {0 1 1 2}", m[0])
	}
	if m[1].Distance != 3.5 {
		t.Errorf("merge 1 distance = %v, want 3.5", m[1].Distance)
	}
	if m[1].Size != 3 {
		t.Errorf("merge 1 size = %v, want 3", m[1].Size)
	}
}

// Single vs complete linkage diverge on a chain of points.
func TestSingleVersusCompleteChaining(t *testing.T) {
	// Points: 0, 2, 4, 6 — a chain with equal gaps.
	pts := []float64{0, 2, 4, 6}
	single, err := Cluster(matrixFromPoints(t, pts), Single)
	if err != nil {
		t.Fatal(err)
	}
	complete, err := Cluster(matrixFromPoints(t, pts), Complete)
	if err != nil {
		t.Fatal(err)
	}
	// Single linkage joins the whole chain at distance 2.
	sd := single.Merges()
	if sd[len(sd)-1].Distance != 2 {
		t.Errorf("single final merge at %v, want 2", sd[len(sd)-1].Distance)
	}
	// Complete linkage's final merge must exceed single's.
	cd := complete.Merges()
	if cd[len(cd)-1].Distance <= 2 {
		t.Errorf("complete final merge at %v, want > 2", cd[len(cd)-1].Distance)
	}
}

func TestCopheneticDistance(t *testing.T) {
	pts := []float64{0, 1, 10}
	dend, err := Cluster(matrixFromPoints(t, pts), Average)
	if err != nil {
		t.Fatal(err)
	}
	if got := dend.CopheneticDistance(0, 1); got != 1 {
		t.Errorf("CopheneticDistance(0,1) = %v, want 1", got)
	}
	c02 := dend.CopheneticDistance(0, 2)
	c12 := dend.CopheneticDistance(1, 2)
	if c02 != c12 || c02 != 9.5 {
		t.Errorf("cophenetic to outlier = (%v, %v), want 9.5 each", c02, c12)
	}
	if got := dend.CopheneticDistance(2, 2); got != 0 {
		t.Errorf("CopheneticDistance(2,2) = %v, want 0", got)
	}
}

func TestMergeDistancesSortedAndMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]float64, 30)
	for i := range pts {
		pts[i] = rng.Float64() * 100
	}
	for _, linkage := range []Linkage{Single, Complete, Average, Weighted, Ward} {
		dend, err := Cluster(matrixFromPoints(t, pts), linkage)
		if err != nil {
			t.Fatal(err)
		}
		ds := dend.MergeDistances()
		if !sort.Float64sAreSorted(ds) {
			t.Errorf("%v MergeDistances not sorted", linkage)
		}
		// For these reducible linkages the raw merge sequence itself is
		// non-decreasing (no inversions).
		raw := dend.Merges()
		for i := 1; i < len(raw); i++ {
			if raw[i].Distance < raw[i-1].Distance-1e-9 {
				t.Errorf("%v merge %d at %v after %v (inversion)",
					linkage, i, raw[i].Distance, raw[i-1].Distance)
				break
			}
		}
	}
}

// Property: for arbitrary small point sets, cutting at 0 yields singletons
// and cutting at +inf yields one cluster; label vectors are always valid
// partitions.
func TestClusterPropertyQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 24 {
			return true
		}
		pts := make([]float64, len(raw))
		for i, v := range raw {
			pts[i] = float64(v)
		}
		dm, err := NewDistMatrix(len(pts))
		if err != nil {
			return false
		}
		for i := range pts {
			for j := i + 1; j < len(pts); j++ {
				dm.Set(i, j, math.Abs(pts[i]-pts[j]))
			}
		}
		dend, err := Cluster(dm, Average)
		if err != nil {
			return false
		}
		all := dend.CutDistance(math.Inf(1))
		if !allEqual(all) {
			return false
		}
		for k := 1; k <= len(pts); k++ {
			labels := dend.CutK(k)
			distinct := make(map[int]bool)
			for _, l := range labels {
				distinct[l] = true
			}
			// Exactly k clusters unless duplicate points merged at 0;
			// never more than k.
			if len(distinct) > k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLinkageString(t *testing.T) {
	if Average.String() != "average" || Ward.String() != "ward" {
		t.Error("linkage names wrong")
	}
	if Linkage(42).String() != "Linkage(42)" {
		t.Error("unknown linkage name wrong")
	}
}
