// Package hcluster implements agglomerative hierarchical clustering over a
// precomputed pairwise distance matrix, equivalent to the SciPy
// cluster.hierarchy routines the paper uses in its Data Preprocessing
// Module. The paper's linkage criterion is UPGMA (average linkage): the
// distance between two clusters is the mean distance between all pairs of
// their elements.
//
// Cluster merging uses the Lance-Williams update formulas, which express
// every supported linkage as a recurrence on the evolving distance matrix.
package hcluster

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Linkage selects the inter-cluster distance criterion.
type Linkage int

// Supported linkage criteria.
const (
	// Single: minimum pairwise distance (nearest neighbour).
	Single Linkage = iota + 1
	// Complete: maximum pairwise distance (furthest neighbour).
	Complete
	// Average is UPGMA, the paper's criterion: mean pairwise distance.
	Average
	// Weighted is WPGMA: the unweighted mean of the two sub-cluster
	// distances.
	Weighted
	// Ward merges the pair minimising the within-cluster variance
	// increase.
	Ward
)

var linkageNames = map[Linkage]string{
	Single:   "single",
	Complete: "complete",
	Average:  "average",
	Weighted: "weighted",
	Ward:     "ward",
}

// String returns the canonical linkage name.
func (l Linkage) String() string {
	if n, ok := linkageNames[l]; ok {
		return n
	}
	return fmt.Sprintf("Linkage(%d)", int(l))
}

// DistMatrix is a symmetric pairwise distance matrix over n observations,
// stored in condensed form (upper triangle).
type DistMatrix struct {
	n    int
	data []float64
}

// NewDistMatrix allocates an n×n zero matrix.
func NewDistMatrix(n int) (*DistMatrix, error) {
	if n < 1 {
		return nil, fmt.Errorf("hcluster: matrix size %d must be positive", n)
	}
	return &DistMatrix{n: n, data: make([]float64, n*(n-1)/2)}, nil
}

// Len returns the number of observations.
func (dm *DistMatrix) Len() int { return dm.n }

// idx maps (i, j), i != j, to the condensed offset.
func (dm *DistMatrix) idx(i, j int) int {
	if i > j {
		i, j = j, i
	}
	// Offset of row i in the condensed upper triangle, plus column.
	return i*(2*dm.n-i-1)/2 + (j - i - 1)
}

// Set assigns the distance between observations i and j.
func (dm *DistMatrix) Set(i, j int, d float64) {
	if i == j {
		return
	}
	dm.data[dm.idx(i, j)] = d
}

// Get returns the distance between observations i and j.
func (dm *DistMatrix) Get(i, j int) float64 {
	if i == j {
		return 0
	}
	return dm.data[dm.idx(i, j)]
}

// Validate checks symmetry invariants implicitly held by the condensed
// storage and rejects negative or non-finite entries.
func (dm *DistMatrix) Validate() error {
	for _, d := range dm.data {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("hcluster: invalid distance %v", d)
		}
	}
	return nil
}

// Merge is one agglomeration step: clusters A and B (ids as in SciPy: the
// first n ids are singleton observations, id n+k is the cluster produced
// by step k) joined at the given distance into a cluster of Size
// observations.
type Merge struct {
	A, B     int
	Distance float64
	Size     int
}

// Dendrogram is the full agglomeration tree over n observations.
type Dendrogram struct {
	n      int
	merges []Merge
}

// NumObservations returns n.
func (d *Dendrogram) NumObservations() int { return d.n }

// Merges returns a copy of the merge steps in order.
func (d *Dendrogram) Merges() []Merge {
	out := make([]Merge, len(d.merges))
	copy(out, d.merges)
	return out
}

// Cluster performs agglomerative clustering of the observations described
// by the distance matrix under the given linkage.
func Cluster(dm *DistMatrix, linkage Linkage) (*Dendrogram, error) {
	if dm == nil {
		return nil, errors.New("hcluster: nil distance matrix")
	}
	if err := dm.Validate(); err != nil {
		return nil, err
	}
	if _, ok := linkageNames[linkage]; !ok {
		return nil, fmt.Errorf("hcluster: unknown linkage %v", linkage)
	}
	n := dm.n
	dend := &Dendrogram{n: n}
	if n == 1 {
		return dend, nil
	}

	// Working distance matrix over active clusters, full (not condensed)
	// for simple updates. Cluster slots reuse observation indices; a merge
	// writes the new cluster into the lower slot and deactivates the
	// higher one.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = dm.Get(i, j)
		}
	}
	active := make([]bool, n)
	size := make([]int, n)
	id := make([]int, n) // dendrogram id currently held by each slot
	for i := 0; i < n; i++ {
		active[i], size[i], id[i] = true, 1, i
	}

	for step := 0; step < n-1; step++ {
		// Find the closest active pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if dist[i][j] < best {
					bi, bj, best = i, j, dist[i][j]
				}
			}
		}
		na, nb := float64(size[bi]), float64(size[bj])
		dend.merges = append(dend.merges, Merge{
			A: id[bi], B: id[bj], Distance: best, Size: size[bi] + size[bj],
		})
		// Lance-Williams update of distances from the merged cluster to
		// every other active cluster k:
		//   d(ab,k) = αa·d(a,k) + αb·d(b,k) + β·d(a,b) + γ·|d(a,k)-d(b,k)|
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			dak, dbk, dab := dist[bi][k], dist[bj][k], best
			var d float64
			switch linkage {
			case Single:
				d = math.Min(dak, dbk)
			case Complete:
				d = math.Max(dak, dbk)
			case Average:
				d = (na*dak + nb*dbk) / (na + nb)
			case Weighted:
				d = (dak + dbk) / 2
			case Ward:
				nk := float64(size[k])
				t := na + nb + nk
				d = math.Sqrt(math.Max(0,
					((na+nk)*dak*dak+(nb+nk)*dbk*dbk-nk*dab*dab)/t))
			}
			dist[bi][k], dist[k][bi] = d, d
		}
		active[bj] = false
		size[bi] += size[bj]
		id[bi] = n + step
	}
	return dend, nil
}

// CutDistance flattens the dendrogram at threshold t: every merge with
// distance <= t is applied. It returns one cluster label per observation,
// with labels numbered 0..k-1 in order of each cluster's smallest
// observation index.
func (d *Dendrogram) CutDistance(t float64) []int {
	apply := 0
	for apply < len(d.merges) && d.merges[apply].Distance <= t {
		apply++
	}
	return d.labelsAfter(apply)
}

// CutK flattens the dendrogram into exactly k clusters (or fewer when
// there are fewer observations).
func (d *Dendrogram) CutK(k int) []int {
	if k < 1 {
		k = 1
	}
	apply := d.n - k
	if apply < 0 {
		apply = 0
	}
	if apply > len(d.merges) {
		apply = len(d.merges)
	}
	return d.labelsAfter(apply)
}

// labelsAfter applies the first `apply` merges with union-find and labels
// the resulting components.
func (d *Dendrogram) labelsAfter(apply int) []int {
	// parent over ids 0..n+apply-1; id n+k is merge step k.
	parent := make([]int, d.n+apply)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for s := 0; s < apply; s++ {
		m := d.merges[s]
		newID := d.n + s
		parent[find(m.A)] = newID
		parent[find(m.B)] = newID
	}
	labels := make([]int, d.n)
	next := 0
	rootLabel := make(map[int]int)
	for i := 0; i < d.n; i++ {
		r := find(i)
		l, ok := rootLabel[r]
		if !ok {
			l = next
			rootLabel[r] = l
			next++
		}
		labels[i] = l
	}
	return labels
}

// NumClustersAt reports how many clusters a cut at threshold t yields.
func (d *Dendrogram) NumClustersAt(t float64) int {
	apply := 0
	for apply < len(d.merges) && d.merges[apply].Distance <= t {
		apply++
	}
	return d.n - apply
}

// CopheneticDistance returns the dendrogram distance at which observations
// i and j were first joined.
func (d *Dendrogram) CopheneticDistance(i, j int) float64 {
	if i == j {
		return 0
	}
	// Track the cluster id containing each observation through the
	// merges; the first merge uniting them gives the distance.
	holder := make(map[int]int, 2)
	holder[i] = i
	holder[j] = j
	for s, m := range d.merges {
		newID := d.n + s
		hi, hj := holder[i], holder[j]
		if hi == m.A || hi == m.B {
			holder[i] = newID
		}
		if hj == m.A || hj == m.B {
			holder[j] = newID
		}
		if holder[i] == holder[j] {
			return m.Distance
		}
	}
	return math.Inf(1)
}

// MergeDistances returns the sorted sequence of merge distances — useful
// for picking a cut threshold from the largest gap.
func (d *Dendrogram) MergeDistances() []float64 {
	out := make([]float64, len(d.merges))
	for i, m := range d.merges {
		out[i] = m.Distance
	}
	sort.Float64s(out)
	return out
}
