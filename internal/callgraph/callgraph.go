// Package callgraph implements the paper's first comparison model: a
// decision procedure over system-level function call graphs (§III-D1).
//
// From the system stack traces of the benign and the mixed training logs
// it builds two call graphs — the benign call graph (BCG, positive model)
// and the mixed call graph (MCG, negative model) — whose nodes are
// module-qualified system functions and whose edges are the adjacent
// invocation pairs observed in stack walks. A testing event's call
// relations are then looked up in both graphs: relations present only in
// the BCG vote benign, relations present only in the MCG vote malicious,
// and relations in both or neither are uninformative. Events whose votes
// tie (or that produce no votes) are undecidable — the model's fundamental
// weakness the paper quantifies.
package callgraph

import (
	"errors"
	"fmt"

	"repro/internal/partition"
	"repro/internal/telemetry"
)

// Matcher telemetry: verdict mix (the undecided share is the model's
// headline weakness) and the sizes of the trained graphs. Verdict counters
// are resolved once here so the per-event path stays a plain atomic add.
var (
	mVerdicts         = telemetry.NewCounterVec("callgraph_verdicts_total", "event classifications by the call-graph matcher", "verdict")
	mVerdictBenign    = mVerdicts.With("benign")
	mVerdictMalicious = mVerdicts.With("malicious")
	mVerdictUndecided = mVerdicts.With("undecided")
	mWindowVerdicts   = telemetry.NewCounterVec("callgraph_window_verdicts_total", "window classifications by the call-graph matcher", "verdict")
	mWinVerdBenign    = mWindowVerdicts.With("benign")
	mWinVerdMalicious = mWindowVerdicts.With("malicious")
	mWinVerdUndecided = mWindowVerdicts.With("undecided")
	mBCGEdges         = telemetry.NewGauge("callgraph_bcg_edges", "edges in the last trained benign call graph")
	mMCGEdges         = telemetry.NewGauge("callgraph_mcg_edges", "edges in the last trained mixed call graph")
)

// Verdict is the outcome of classifying one event or window.
type Verdict int

// Verdicts.
const (
	// VerdictUndecided means the call-graph evidence was absent or
	// contradictory.
	VerdictUndecided Verdict = iota + 1
	VerdictBenign
	VerdictMalicious
)

var verdictNames = map[Verdict]string{
	VerdictUndecided: "undecided",
	VerdictBenign:    "benign",
	VerdictMalicious: "malicious",
}

// String returns the verdict name.
func (v Verdict) String() string {
	if n, ok := verdictNames[v]; ok {
		return n
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// edge is one call relation between two module-qualified functions.
type edge struct {
	caller string
	callee string
}

// Model holds the benign and mixed system-level call graphs.
type Model struct {
	bcg map[edge]struct{}
	mcg map[edge]struct{}
}

// Train builds the BCG from the benign log and the MCG from the mixed log.
func Train(benign, mixed *partition.Log) (*Model, error) {
	if benign == nil || mixed == nil {
		return nil, errors.New("callgraph: nil training log")
	}
	m := &Model{
		bcg: make(map[edge]struct{}),
		mcg: make(map[edge]struct{}),
	}
	addAll(m.bcg, benign)
	addAll(m.mcg, mixed)
	mBCGEdges.Set(float64(len(m.bcg)))
	mMCGEdges.Set(float64(len(m.mcg)))
	return m, nil
}

// BCGSize and MCGSize report the graph sizes (edge counts).
func (m *Model) BCGSize() int { return len(m.bcg) }

// MCGSize reports the mixed call graph's edge count.
func (m *Model) MCGSize() int { return len(m.mcg) }

func addAll(g map[edge]struct{}, log *partition.Log) {
	for i := range log.Events {
		for _, e := range eventEdges(&log.Events[i]) {
			g[e] = struct{}{}
		}
	}
}

// eventEdges extracts the call relations from an event's system stack
// trace: one edge per adjacent frame pair.
func eventEdges(e *partition.Event) []edge {
	if len(e.SysTrace) < 2 {
		return nil
	}
	out := make([]edge, 0, len(e.SysTrace)-1)
	for i := 0; i+1 < len(e.SysTrace); i++ {
		a, b := e.SysTrace[i], e.SysTrace[i+1]
		out = append(out, edge{
			caller: a.Module + "!" + a.Function,
			callee: b.Module + "!" + b.Function,
		})
	}
	return out
}

// Classify scores one event: call relations exclusive to the BCG vote
// benign, relations exclusive to the MCG vote malicious; a majority
// decides, anything else is undecidable.
func (m *Model) Classify(e *partition.Event) Verdict {
	benignVotes, maliciousVotes := m.votes(e)
	switch {
	case benignVotes > maliciousVotes:
		mVerdictBenign.Inc()
		return VerdictBenign
	case maliciousVotes > benignVotes:
		mVerdictMalicious.Inc()
		return VerdictMalicious
	default:
		mVerdictUndecided.Inc()
		return VerdictUndecided
	}
}

// votes counts the event's exclusive-edge evidence.
func (m *Model) votes(e *partition.Event) (benign, malicious int) {
	for _, ed := range eventEdges(e) {
		_, inB := m.bcg[ed]
		_, inM := m.mcg[ed]
		switch {
		case inB && !inM:
			benign++
		case inM && !inB:
			malicious++
		}
	}
	return benign, malicious
}

// WindowVotes aggregates the exclusive-edge vote counts of a run of
// consecutive events — the raw evidence ClassifyWindow decides on, exposed
// so degraded-mode detectors can report vote margins as scores.
func (m *Model) WindowVotes(events []partition.Event) (benign, malicious int) {
	for i := range events {
		b, mal := m.votes(&events[i])
		benign += b
		malicious += mal
	}
	return benign, malicious
}

// ClassifyWindow aggregates the vote counts of a run of consecutive events
// (the same 10-event windows the statistical models classify) and decides
// by vote majority.
func (m *Model) ClassifyWindow(events []partition.Event) Verdict {
	benignVotes, maliciousVotes := m.WindowVotes(events)
	switch {
	case benignVotes > maliciousVotes:
		mWinVerdBenign.Inc()
		return VerdictBenign
	case maliciousVotes > benignVotes:
		mWinVerdMalicious.Inc()
		return VerdictMalicious
	default:
		mWinVerdUndecided.Inc()
		return VerdictUndecided
	}
}
