package callgraph

import (
	"testing"

	"repro/internal/appsim"
	"repro/internal/partition"
	"repro/internal/trace"
)

// sysEvent builds a partitioned event whose system trace walks the given
// module!function names in order.
func sysEvent(typ trace.EventType, names ...[2]string) partition.Event {
	e := partition.Event{Type: typ}
	for i, mf := range names {
		e.SysTrace = append(e.SysTrace, trace.Frame{
			Addr: uint64(i + 1), Module: mf[0], Function: mf[1],
		})
	}
	return e
}

func TestTrainValidation(t *testing.T) {
	l := &partition.Log{}
	if _, err := Train(nil, l); err == nil {
		t.Error("nil benign accepted")
	}
	if _, err := Train(l, nil); err == nil {
		t.Error("nil mixed accepted")
	}
}

func TestClassifyExclusiveEdges(t *testing.T) {
	benignEvent := sysEvent(trace.EventFileRead,
		[2]string{"k32", "ReadFile"}, [2]string{"ntdll", "NtReadFile"})
	maliciousEvent := sysEvent(trace.EventNetSend,
		[2]string{"ws2", "send"}, [2]string{"afd", "Send"})

	benignLog := &partition.Log{Events: []partition.Event{benignEvent}}
	mixedLog := &partition.Log{Events: []partition.Event{benignEvent, maliciousEvent}}
	m, err := Train(benignLog, mixedLog)
	if err != nil {
		t.Fatal(err)
	}
	if m.BCGSize() != 1 || m.MCGSize() != 2 {
		t.Fatalf("graph sizes = (%d,%d), want (1,2)", m.BCGSize(), m.MCGSize())
	}
	// The benign event's edge is in both graphs: undecidable — the
	// paper's central complaint about this model.
	if got := m.Classify(&benignEvent); got != VerdictUndecided {
		t.Errorf("benign-event verdict = %v, want undecided", got)
	}
	// The malicious event's edge is exclusive to the MCG.
	if got := m.Classify(&maliciousEvent); got != VerdictMalicious {
		t.Errorf("malicious-event verdict = %v, want malicious", got)
	}
	// An unseen stack yields no votes.
	unseen := sysEvent(trace.EventRegistryRead, [2]string{"adv", "RegOpen"}, [2]string{"ntdll", "NtOpenKey"})
	if got := m.Classify(&unseen); got != VerdictUndecided {
		t.Errorf("unseen-event verdict = %v, want undecided", got)
	}
}

func TestClassifyBenignExclusive(t *testing.T) {
	benignOnly := sysEvent(trace.EventRegistryRead,
		[2]string{"adv", "RegOpen"}, [2]string{"ntdll", "NtOpenKey"})
	other := sysEvent(trace.EventNetSend,
		[2]string{"ws2", "send"}, [2]string{"afd", "Send"})
	m, err := Train(
		&partition.Log{Events: []partition.Event{benignOnly}},
		&partition.Log{Events: []partition.Event{other}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Classify(&benignOnly); got != VerdictBenign {
		t.Errorf("verdict = %v, want benign", got)
	}
}

func TestClassifySingleFrameNoEdges(t *testing.T) {
	one := sysEvent(trace.EventFileRead, [2]string{"k32", "ReadFile"})
	m, err := Train(
		&partition.Log{Events: []partition.Event{one}},
		&partition.Log{Events: []partition.Event{}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Classify(&one); got != VerdictUndecided {
		t.Errorf("single-frame verdict = %v, want undecided", got)
	}
}

func TestClassifyWindowMajority(t *testing.T) {
	benignOnly := sysEvent(trace.EventRegistryRead,
		[2]string{"adv", "RegOpen"}, [2]string{"ntdll", "NtOpenKey"})
	maliciousOnly := sysEvent(trace.EventNetSend,
		[2]string{"ws2", "send"}, [2]string{"afd", "Send"})
	m, err := Train(
		&partition.Log{Events: []partition.Event{benignOnly}},
		&partition.Log{Events: []partition.Event{maliciousOnly}},
	)
	if err != nil {
		t.Fatal(err)
	}
	win := []partition.Event{benignOnly, benignOnly, maliciousOnly}
	if got := m.ClassifyWindow(win); got != VerdictBenign {
		t.Errorf("window verdict = %v, want benign", got)
	}
	win = []partition.Event{maliciousOnly, maliciousOnly, benignOnly}
	if got := m.ClassifyWindow(win); got != VerdictMalicious {
		t.Errorf("window verdict = %v, want malicious", got)
	}
	win = []partition.Event{benignOnly, maliciousOnly}
	if got := m.ClassifyWindow(win); got != VerdictUndecided {
		t.Errorf("tied window verdict = %v, want undecided", got)
	}
	if got := m.ClassifyWindow(nil); got != VerdictUndecided {
		t.Errorf("empty window verdict = %v, want undecided", got)
	}
}

func TestVerdictString(t *testing.T) {
	if VerdictBenign.String() != "benign" || VerdictMalicious.String() != "malicious" ||
		VerdictUndecided.String() != "undecided" {
		t.Error("verdict names wrong")
	}
	if Verdict(9).String() != "Verdict(9)" {
		t.Error("unknown verdict name wrong")
	}
}

// On simulated data, pure-malicious events should classify mostly
// malicious while many benign events are undecided (their edges occur in
// both graphs) — the phenomenon the paper reports as CGraph's low benign
// hit rate.
func TestSimulatedBehaviour(t *testing.T) {
	payload := appsim.ReverseTCPProfile()
	proc, err := appsim.NewProcess(appsim.VimProfile(), &payload, appsim.MethodOfflineInfection)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := appsim.NewProcess(appsim.VimProfile(), nil, appsim.MethodNone)
	if err != nil {
		t.Fatal(err)
	}
	standalone, err := appsim.NewStandaloneProcess(appsim.ReverseTCPProfile())
	if err != nil {
		t.Fatal(err)
	}

	benignLog, err := clean.GenerateLog(appsim.GenConfig{Seed: 1, Events: 2500, PID: 1})
	if err != nil {
		t.Fatal(err)
	}
	mixedLog, err := proc.GenerateLog(appsim.GenConfig{Seed: 2, Events: 2500, PayloadFraction: 0.4, PID: 2})
	if err != nil {
		t.Fatal(err)
	}
	malLog, err := standalone.GenerateLog(appsim.GenConfig{Seed: 3, Events: 1000, PID: 3})
	if err != nil {
		t.Fatal(err)
	}

	bp, err := partition.Split(benignLog)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := partition.Split(mixedLog)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := partition.Split(malLog)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(bp, mp)
	if err != nil {
		t.Fatal(err)
	}

	var malCorrect, malTotal int
	for i := range tp.Events {
		if m.Classify(&tp.Events[i]) == VerdictMalicious {
			malCorrect++
		}
		malTotal++
	}
	var benignDecided, benignTotal int
	for i := range bp.Events {
		if m.Classify(&bp.Events[i]) == VerdictBenign {
			benignDecided++
		}
		benignTotal++
	}
	malRate := float64(malCorrect) / float64(malTotal)
	benignRate := float64(benignDecided) / float64(benignTotal)
	if malRate < 0.3 {
		t.Errorf("malicious hit rate = %.3f, want >= 0.3", malRate)
	}
	// The model's weakness: benign hit rate stays low because benign
	// edges appear in both graphs.
	if benignRate > 0.6 {
		t.Errorf("benign hit rate = %.3f — unexpectedly high for the CGraph baseline", benignRate)
	}
}
