package callgraph

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
)

// modelFile is the on-disk form of a call-graph model: both edge sets as
// sorted lists, so identical models serialise to identical bytes.
type modelFile struct {
	Magic   string
	Version int
	BCG     []edgePair
	MCG     []edgePair
}

type edgePair struct {
	Caller string
	Callee string
}

const (
	modelMagic   = "LEAPS-CGRAPH"
	modelVersion = 1
)

func sortedEdges(g map[edge]struct{}) []edgePair {
	out := make([]edgePair, 0, len(g))
	for e := range g {
		out = append(out, edgePair{Caller: e.caller, Callee: e.callee})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Caller != out[j].Caller {
			return out[i].Caller < out[j].Caller
		}
		return out[i].Callee < out[j].Callee
	})
	return out
}

// MarshalBinary serialises the model so a detector can fall back to the
// call-graph baseline without the training logs at hand.
func (m *Model) MarshalBinary() ([]byte, error) {
	f := modelFile{
		Magic:   modelMagic,
		Version: modelVersion,
		BCG:     sortedEdges(m.bcg),
		MCG:     sortedEdges(m.mcg),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, fmt.Errorf("callgraph: encoding model: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a model written by MarshalBinary.
func (m *Model) UnmarshalBinary(data []byte) error {
	var f modelFile
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&f); err != nil {
		return fmt.Errorf("callgraph: decoding model: %w", err)
	}
	if f.Magic != modelMagic {
		return fmt.Errorf("callgraph: not a call-graph model (magic %q)", f.Magic)
	}
	if f.Version != modelVersion {
		return fmt.Errorf("callgraph: unsupported model version %d", f.Version)
	}
	m.bcg = make(map[edge]struct{}, len(f.BCG))
	for _, p := range f.BCG {
		m.bcg[edge{caller: p.Caller, callee: p.Callee}] = struct{}{}
	}
	m.mcg = make(map[edge]struct{}, len(f.MCG))
	for _, p := range f.MCG {
		m.mcg[edge{caller: p.Caller, callee: p.Callee}] = struct{}{}
	}
	return nil
}
