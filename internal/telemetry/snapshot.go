package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"
)

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound (+Inf for the
	// last), serialised as a string so the JSON stays valid.
	UpperBound float64 `json:"-"`
	// Count is the cumulative observation count up to UpperBound.
	Count uint64 `json:"count"`
	// Exemplar is the bucket's most recent traced observation, if any.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// bucketJSON is the wire form of Bucket (JSON has no +Inf literal).
type bucketJSON struct {
	UpperBound string    `json:"le"`
	Count      uint64    `json:"count"`
	Exemplar   *Exemplar `json:"exemplar,omitempty"`
}

// MarshalJSON renders the bound as a string ("+Inf" for the overflow
// bucket).
func (b Bucket) MarshalJSON() ([]byte, error) {
	ub := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		ub = fmt.Sprintf("%g", b.UpperBound)
	}
	return json.Marshal(bucketJSON{UpperBound: ub, Count: b.Count, Exemplar: b.Exemplar})
}

// UnmarshalJSON parses the wire form back.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var w bucketJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	b.Count = w.Count
	b.Exemplar = w.Exemplar
	if w.UpperBound == "+Inf" {
		b.UpperBound = math.Inf(1)
		return nil
	}
	_, err := fmt.Sscanf(w.UpperBound, "%g", &b.UpperBound)
	return err
}

// MetricSnapshot is the point-in-time state of one instrument (one child
// per label value for families).
type MetricSnapshot struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Help string `json:"help,omitempty"`
	// Label and LabelValue identify the child of a labeled family.
	Label      string `json:"label,omitempty"`
	LabelValue string `json:"label_value,omitempty"`
	// Value is the counter/gauge value; for histograms it is the sum of
	// observations.
	Value float64 `json:"value"`
	// Count and Buckets are histogram-only.
	Count   uint64   `json:"count,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-th quantile (0 < q <= 1) of a histogram
// snapshot by linear interpolation inside the bucket the target rank
// lands in, Prometheus histogram_quantile-style. Observations in the
// +Inf bucket are clamped to the last finite bound. It returns NaN for
// non-histogram snapshots and histograms with no observations.
func (m MetricSnapshot) Quantile(q float64) float64 {
	if m.Count == 0 || len(m.Buckets) == 0 || q <= 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(m.Count)
	lower := 0.0
	for i, b := range m.Buckets {
		if float64(b.Count) < rank {
			lower = b.UpperBound
			continue
		}
		if math.IsInf(b.UpperBound, 1) {
			return lower // clamp: no upper edge to interpolate toward
		}
		prev := uint64(0)
		if i > 0 {
			prev = m.Buckets[i-1].Count
		}
		inBucket := float64(b.Count - prev)
		if inBucket == 0 {
			return b.UpperBound
		}
		return lower + (b.UpperBound-lower)*(rank-float64(prev))/inBucket
	}
	return lower
}

// Snapshot bundles the registry and span-table state for the JSON
// telemetry reports.
type Snapshot struct {
	TakenAt time.Time        `json:"taken_at"`
	Metrics []MetricSnapshot `json:"metrics"`
	Spans   []SpanSnapshot   `json:"spans"`
}

// Capture snapshots the default registry and the global span table.
func Capture() Snapshot {
	return Snapshot{
		TakenAt: time.Now().UTC(),
		Metrics: Default().Snapshot(),
		Spans:   SpanReport(),
	}
}

// WriteJSON writes a Capture as indented JSON.
func WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Capture())
}

// WriteJSONFile writes a Capture to the named file — how leaps-train and
// leaps-detect drop their telemetry reports next to their outputs.
func WriteJSONFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return WriteJSON(f)
}

// WriteText renders the registry in the classic Prometheus text
// exposition format (the /metrics default). Exemplars are OpenMetrics
// syntax — the classic text parser rejects a mid-line '#' after a
// sample value — so this format never emits them; clients that want
// exemplars negotiate WriteOpenMetrics via the Accept header.
func WriteText(w io.Writer, metrics []MetricSnapshot) error {
	return writeExposition(w, metrics, false)
}

// WriteOpenMetrics renders the registry in the OpenMetrics text format:
// the same families and samples as WriteText plus exemplars on
// histogram buckets, terminated by the mandatory "# EOF" marker.
func WriteOpenMetrics(w io.Writer, metrics []MetricSnapshot) error {
	if err := writeExposition(w, metrics, true); err != nil {
		return err
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

// writeExposition is the shared renderer behind both text formats;
// exemplars selects the OpenMetrics extras.
func writeExposition(w io.Writer, metrics []MetricSnapshot, exemplars bool) error {
	var lastName string
	for _, m := range metrics {
		if m.Name != lastName {
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
				return err
			}
			lastName = m.Name
		}
		switch m.Kind {
		case "histogram":
			var err error
			family := ""
			if m.Label != "" {
				family = fmt.Sprintf("%s=%q", m.Label, m.LabelValue)
			}
			for _, b := range m.Buckets {
				ub := "+Inf"
				if !math.IsInf(b.UpperBound, 1) {
					ub = fmt.Sprintf("%g", b.UpperBound)
				}
				labels := fmt.Sprintf("le=%q", ub)
				if family != "" {
					labels = family + "," + labels
				}
				ex := ""
				if exemplars && b.Exemplar != nil {
					// OpenMetrics exemplar syntax: the trace that landed in
					// this bucket, its value, and its unix timestamp.
					ex = fmt.Sprintf(" # {trace_id=%q} %g %.3f",
						b.Exemplar.TraceID, b.Exemplar.Value,
						float64(b.Exemplar.Time.UnixMilli())/1000)
				}
				if _, err = fmt.Fprintf(w, "%s_bucket{%s} %d%s\n", m.Name, labels, b.Count, ex); err != nil {
					return err
				}
			}
			sumLabels := ""
			if family != "" {
				sumLabels = "{" + family + "}"
			}
			if _, err = fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n",
				m.Name, sumLabels, m.Value, m.Name, sumLabels, m.Count); err != nil {
				return err
			}
		default:
			labels := ""
			if m.Label != "" {
				labels = fmt.Sprintf("{%s=%q}", m.Label, m.LabelValue)
			}
			if _, err := fmt.Fprintf(w, "%s%s %g\n", m.Name, labels, m.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteSpansText renders the span table as an indented tree, children
// under their parents, with count / total / mean per line.
func WriteSpansText(w io.Writer, spans []SpanSnapshot) error {
	for _, s := range spans {
		depth := strings.Count(s.Path, "/")
		mean := time.Duration(0)
		if s.Count > 0 {
			mean = s.Total / time.Duration(s.Count)
		}
		_, err := fmt.Fprintf(w, "%s%-*s  count=%d total=%s mean=%s min=%s max=%s\n",
			strings.Repeat("  ", depth), 40-2*depth, s.Path,
			s.Count, s.Total, mean, s.Min, s.Max)
		if err != nil {
			return err
		}
	}
	return nil
}
