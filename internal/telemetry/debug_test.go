package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	NewCounter("debug_test_total", "exercises the debug server").Add(7)
	_, s := StartSpan(context.Background(), "debug_test_span")
	s.End()

	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "debug_test_total 7") {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}

	code, body = get(t, base+"/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("/metrics?format=json = %d", code)
	}
	var metrics []MetricSnapshot
	if err := json.Unmarshal([]byte(body), &metrics); err != nil {
		t.Fatalf("metrics JSON invalid: %v", err)
	}

	code, body = get(t, base+"/spans")
	if code != http.StatusOK || !strings.Contains(body, "debug_test_span") {
		t.Errorf("/spans = %d:\n%s", code, body)
	}

	code, body = get(t, base+"/spans?format=json")
	if code != http.StatusOK {
		t.Fatalf("/spans?format=json = %d", code)
	}
	var spans []SpanSnapshot
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("spans JSON invalid: %v", err)
	}

	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "leaps_telemetry") {
		t.Errorf("/debug/vars = %d missing leaps_telemetry", code)
	}

	code, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}

	code, body = get(t, base+"/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d:\n%s", code, body)
	}

	code, _ = get(t, base+"/nope")
	if code != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", code)
	}
}

// TestMetricsContentNegotiation checks that /metrics keeps the classic
// text format exemplar-free and reserves exemplars (plus the "# EOF"
// terminator) for clients that ask for OpenMetrics via Accept.
func TestMetricsContentNegotiation(t *testing.T) {
	h := NewHistogram("negotiate_test_seconds", "negotiation", []float64{1})
	h.ObserveTraced(0.5, "feedfacefeedfacefeedfacefeedface")

	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := "http://" + srv.Addr + "/metrics"

	fetch := func(accept string) (string, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("Content-Type"), string(body)
	}

	ct, body := fetch("")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("plain scrape Content-Type = %q", ct)
	}
	if strings.Contains(body, " # {") || strings.Contains(body, "# EOF") {
		t.Errorf("plain text scrape carries OpenMetrics syntax:\n%s", body)
	}

	ct, body = fetch("application/openmetrics-text; version=1.0.0, text/plain;q=0.5")
	if !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("OpenMetrics scrape Content-Type = %q", ct)
	}
	if !strings.Contains(body, `trace_id="feedfacefeedfacefeedfacefeedface"`) {
		t.Errorf("OpenMetrics scrape lost the exemplar:\n%s", body)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Errorf("OpenMetrics scrape not terminated by # EOF:\n%s", body)
	}
}

func TestAcceptsOpenMetrics(t *testing.T) {
	for accept, want := range map[string]bool{
		"":                             false,
		"text/plain":                   false,
		"application/openmetrics-text": true,
		"APPLICATION/OpenMetrics-Text": true,
		"application/openmetrics-text; version=1.0.0; q=0.9, text/plain": true,
		"text/plain, application/openmetrics-text;q=0.2":                 true,
		"application/openmetrics-text;q=0":                               false,
		"application/openmetrics-text; q=0.0":                            false,
		"*/*":                                                            false,
	} {
		if got := acceptsOpenMetrics(accept); got != want {
			t.Errorf("acceptsOpenMetrics(%q) = %v, want %v", accept, got, want)
		}
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad"); err == nil {
		t.Error("bad address accepted")
	}
}

func TestCaptureIncludesMetricsAndSpans(t *testing.T) {
	NewCounter("capture_test_total", "").Inc()
	_, s := StartSpan(context.Background(), "capture_test_span")
	s.End()
	snap := Capture()
	if snap.TakenAt.IsZero() {
		t.Error("TakenAt unset")
	}
	var haveMetric, haveSpan bool
	for _, m := range snap.Metrics {
		if m.Name == "capture_test_total" {
			haveMetric = true
		}
	}
	for _, sp := range snap.Spans {
		if sp.Path == "capture_test_span" {
			haveSpan = true
		}
	}
	if !haveMetric || !haveSpan {
		t.Errorf("capture missing metric (%v) or span (%v)", haveMetric, haveSpan)
	}
}
