package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder is an always-on, fixed-size, lock-free ring of
// recent observability events — span completions, log records, verdict
// summaries, journal transitions, registry operations. It costs one
// atomic add and one pointer store per entry, so it runs in production
// unconditionally and answers the question post-mortems actually ask:
// "what was the system doing just before the breaker tripped / the gate
// said no / the process died?". Dumps are triggered by those exact
// moments (circuit-breaker trip, gate rejection, LEAPS_CRASHPOINT
// exits, SIGQUIT) and on demand via GET /debug/flightrecorder.

// flightSlots is the ring capacity; a power of two so the index wraps
// with a mask instead of a division.
const flightSlots = 2048

// FlightEntry is one recorded moment. Kind partitions the stream
// ("span", "log", "verdict", "http", "journal", "registry", "spool",
// "gate", "shadow"); Trace, when present, is the hex trace ID linking
// the entry to a request or retraining cycle.
type FlightEntry struct {
	// Time is when the entry was recorded.
	Time time.Time `json:"time"`
	// Kind partitions the entry stream by source.
	Kind string `json:"kind"`
	// Name identifies the event within its kind (span path, log message,
	// journal state, HTTP route).
	Name string `json:"name"`
	// Trace is the hex trace ID the event belongs to, if any.
	Trace string `json:"trace,omitempty"`
	// Dur is the event's duration, for kinds that have one (spans, HTTP
	// requests, scoring turns).
	Dur time.Duration `json:"dur_ns,omitempty"`
	// Attrs carries small key=value details (session IDs, entry IDs,
	// verdict counts, log attributes).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// FlightRecorder is the fixed-size lock-free ring. Writers claim a slot
// with one atomic add and publish the entry with one pointer store;
// readers snapshot without blocking writers. A snapshot taken while
// writers are active may miss the very newest entries — the recorder
// trades perfect cuts for zero contention on hot paths.
type FlightRecorder struct {
	next  atomic.Uint64
	slots [flightSlots]atomic.Pointer[FlightEntry]
}

// flight is the process-wide recorder every instrumented package
// records into.
var flight FlightRecorder

// Flight returns the process-wide flight recorder.
func Flight() *FlightRecorder { return &flight }

// Record appends one entry to the ring, stamping Time if unset. It is
// safe from any goroutine and disabled (one atomic load) when telemetry
// is off.
func (f *FlightRecorder) Record(e FlightEntry) {
	if disabled.Load() {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	i := f.next.Add(1) - 1
	f.slots[i&(flightSlots-1)].Store(&e)
}

// Snapshot returns the recorded entries, oldest first. The ring keeps
// at most flightSlots entries; older ones have been overwritten.
func (f *FlightRecorder) Snapshot() []FlightEntry {
	n := f.next.Load()
	start := uint64(0)
	if n > flightSlots {
		start = n - flightSlots
	}
	out := make([]FlightEntry, 0, n-start)
	for i := start; i < n; i++ {
		if p := f.slots[i&(flightSlots-1)].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// Len returns how many entries have ever been recorded (not how many
// the ring still holds).
func (f *FlightRecorder) Len() uint64 { return f.next.Load() }

// Reset empties the ring. Meant for tests and run separation; unlike
// Record/Snapshot it assumes no concurrent writers.
func (f *FlightRecorder) Reset() {
	f.next.Store(0)
	for i := range f.slots {
		f.slots[i].Store(nil)
	}
}

// RecordFlight appends one entry to the process-wide recorder.
func RecordFlight(e FlightEntry) { flight.Record(e) }

// FlightDump is the JSON layout of a flight-recorder dump: why it was
// taken, when, and the ring's entries oldest first.
type FlightDump struct {
	// DumpedAt is when the dump was written.
	DumpedAt time.Time `json:"dumped_at"`
	// Reason names the trigger: breaker-trip, gate-rejected,
	// crashpoint-<point>, sigquit, on-demand.
	Reason string `json:"reason"`
	// Entries is the ring content, oldest first.
	Entries []FlightEntry `json:"entries"`
}

// WriteFlightDump writes the process-wide recorder as indented JSON.
func WriteFlightDump(w io.Writer, reason string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(FlightDump{
		DumpedAt: time.Now().UTC(),
		Reason:   reason,
		Entries:  flight.Snapshot(),
	})
}

// sanitizeReason maps a free-form reason onto a filename-safe alphabet,
// so triggers named after slash-separated crash points ("serve/spool/
// checkpoint") still produce flat, valid dump filenames.
func sanitizeReason(reason string) string {
	out := []byte(reason)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			out[i] = '-'
		}
	}
	return string(out)
}

// FlightDumpKeep bounds how many flight-*.json dumps DumpFlightTo
// retains per directory: after each successful dump the oldest files
// beyond this count are deleted, so repeated triggers (a client
// hammering a failing promotion, a flapping autopilot) cannot fill the
// disk the dumps share with durable state.
const FlightDumpKeep = 32

// DumpFlightTo writes a dump file named flight-<reason>-<nanos>.json
// into dir (created if missing) and returns its path. The reason is
// sanitized for the filename but recorded verbatim inside the dump.
// Older dumps in dir beyond FlightDumpKeep are pruned, best-effort.
func DumpFlightTo(dir, reason string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("telemetry: flight dump dir: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("flight-%s-%d.json", sanitizeReason(reason), time.Now().UnixNano()))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	err = WriteFlightDump(f, reason)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return "", err
	}
	pruneFlightDumps(dir)
	return path, nil
}

// pruneFlightDumps deletes the oldest flight-*.json files in dir beyond
// FlightDumpKeep. Dumps ride error paths, so pruning is best-effort:
// list or remove failures are swallowed.
func pruneFlightDumps(dir string) {
	paths, err := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if err != nil || len(paths) <= FlightDumpKeep {
		return
	}
	type stamped struct {
		path string
		mod  time.Time
	}
	dumps := make([]stamped, 0, len(paths))
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			continue
		}
		dumps = append(dumps, stamped{p, fi.ModTime()})
	}
	sort.Slice(dumps, func(i, j int) bool {
		if !dumps[i].mod.Equal(dumps[j].mod) {
			return dumps[i].mod.Before(dumps[j].mod)
		}
		return dumps[i].path < dumps[j].path
	})
	for i := 0; i < len(dumps)-FlightDumpKeep; i++ {
		_ = os.Remove(dumps[i].path)
	}
}

// DumpGoroutinesTo writes the runtime's full goroutine stack dump
// (pprof "goroutine" profile, debug=2 — the same text SIGQUIT's default
// handler would print before exiting) to goroutines-<reason>-<nanos>.txt
// in dir and returns its path. Catching SIGQUIT for a flight dump
// suppresses the runtime's dump-and-exit escape hatch; this preserves
// the goroutine state alongside the flight recording.
func DumpGoroutinesTo(dir, reason string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("telemetry: goroutine dump dir: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("goroutines-%s-%d.txt", sanitizeReason(reason), time.Now().UnixNano()))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	err = pprof.Lookup("goroutine").WriteTo(f, 2)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return "", err
	}
	return path, nil
}

// flightDir is the process-wide dump directory, set once at CLI startup
// (leaps-serve -flight-dir). Empty disables trigger-driven file dumps;
// the HTTP endpoint keeps working either way.
var flightDir atomic.Pointer[string]

// SetFlightDir configures where trigger-driven dumps (gate rejections,
// SIGQUIT, crash-point exits) land. Empty disables them.
func SetFlightDir(dir string) { flightDir.Store(&dir) }

// FlightDir returns the configured dump directory, "" when unset.
func FlightDir() string {
	if p := flightDir.Load(); p != nil {
		return *p
	}
	return ""
}

// flightDumpMinGap is the minimum spacing between trigger-driven dumps
// sharing a reason. Triggers can be client-driven (a gate rejection is
// one failing POST away), so without a floor a hot retry loop would
// churn a dump file per request; one dump per reason per gap loses
// nothing — the ring holds recent history either way. A var so tests
// can shrink it.
var flightDumpMinGap = 30 * time.Second

// flightDumpLast tracks the last trigger-driven dump time per reason.
var (
	flightDumpMu   sync.Mutex
	flightDumpLast = map[string]time.Time{}
)

// flightDumpAllowed records a trigger firing for reason and reports
// whether a dump is due (true at most once per flightDumpMinGap).
func flightDumpAllowed(reason string) bool {
	flightDumpMu.Lock()
	defer flightDumpMu.Unlock()
	now := time.Now()
	if last, ok := flightDumpLast[reason]; ok && now.Sub(last) < flightDumpMinGap {
		return false
	}
	flightDumpLast[reason] = now
	return true
}

// DumpFlight writes a dump to the configured flight directory. With no
// directory configured it is a silent no-op returning "" — triggers
// fire from error paths that must not grow new failure modes. Dumps
// sharing a reason are rate-limited to one per flightDumpMinGap, so a
// client repeatedly tripping the same trigger cannot flood the state
// dir; a suppressed dump also returns "".
func DumpFlight(reason string) string {
	dir := FlightDir()
	if dir == "" {
		return ""
	}
	if !flightDumpAllowed(reason) {
		return ""
	}
	path, err := DumpFlightTo(dir, reason)
	if err != nil {
		return ""
	}
	return path
}
