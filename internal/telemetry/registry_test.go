package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	// Get-or-create returns the same instruments.
	if r.Counter("test_total", "") != c || r.Gauge("test_gauge", "") != g {
		t.Error("re-registration returned a different instrument")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("registering x as gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Errorf("sum = %v, want 556.5", h.Sum())
	}
	snap := h.snapshot()[0]
	wantCum := []uint64{2, 3, 4, 5} // le=1:2 (0.5 and 1), le=10:3, le=100:4, +Inf:5
	for i, b := range snap.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(snap.Buckets[3].UpperBound, 1) {
		t.Error("last bucket bound is not +Inf")
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("skips_total", "skips", "cause")
	v.With("truncated").Add(3)
	v.With("semantic").Inc()
	if v.With("truncated").Value() != 3 {
		t.Error("labeled child not shared")
	}
	snaps := r.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(snaps))
	}
	// Sorted by label value: semantic before truncated.
	if snaps[0].LabelValue != "semantic" || snaps[1].LabelValue != "truncated" {
		t.Errorf("label order = %q, %q", snaps[0].LabelValue, snaps[1].LabelValue)
	}
	if snaps[0].Label != "cause" {
		t.Errorf("label key = %q, want cause", snaps[0].Label)
	}
}

func TestDisabledStateRecordsNothing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("off_total", "")
	g := r.Gauge("off_gauge", "")
	h := r.Histogram("off_hist", "", []float64{1})
	SetEnabled(false)
	defer SetEnabled(true)
	c.Inc()
	g.Set(7)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("disabled telemetry still recorded values")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	g := r.Gauge("conc_gauge", "")
	h := r.Histogram("conc_hist", "", []float64{10, 100})
	v := r.CounterVec("conc_vec", "", "k")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
				v.With([]string{"a", "b"}[w%2]).Inc()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if v.With("a").Value()+v.With("b").Value() != workers*per {
		t.Error("vec children lost increments")
	}
}

func TestResetZeroes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reset_total", "")
	h := r.Histogram("reset_hist", "", []float64{1})
	v := r.CounterVec("reset_vec", "", "k")
	c.Inc()
	h.Observe(0.5)
	v.With("x").Inc()
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("reset left counter/histogram state")
	}
	if len(v.snapshot()) != 0 {
		t.Error("reset left vec children")
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counts a").Add(2)
	r.Histogram("b_seconds", "latency", []float64{0.1}).Observe(0.05)
	r.CounterVec("c_total", "causes", "cause").With("x").Inc()
	var buf bytes.Buffer
	if err := WriteText(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE a_total counter",
		"a_total 2",
		`b_seconds_bucket{le="0.1"} 1`,
		`b_seconds_bucket{le="+Inf"} 1`,
		"b_seconds_count 1",
		`c_total{cause="x"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q in:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Histogram("j_hist", "", []float64{1, 2}).Observe(1.5)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"le":"+Inf"`) {
		t.Errorf("JSON missing +Inf bucket: %s", data)
	}
	var back []MetricSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || !math.IsInf(back[0].Buckets[2].UpperBound, 1) {
		t.Errorf("round-trip lost +Inf bound: %+v", back)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0.1, 0.1, 3)
	if lin[0] != 0.1 || math.Abs(lin[2]-0.3) > 1e-12 {
		t.Errorf("LinearBuckets = %v", lin)
	}
	exp := ExpBuckets(1, 4, 3)
	if exp[0] != 1 || exp[1] != 4 || exp[2] != 16 {
		t.Errorf("ExpBuckets = %v", exp)
	}
	for _, bounds := range [][]float64{DurationBuckets(), CountBuckets(), UnitBuckets()} {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Errorf("bucket layout not ascending: %v", bounds)
			}
		}
	}
}
