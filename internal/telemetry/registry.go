// Package telemetry is the measurement substrate of the repository: a
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket histograms, optionally labeled), a lightweight span tracer
// for pipeline stages, and the debug HTTP surface (/metrics, /spans,
// expvar, pprof) the CLIs expose behind -debug-addr.
//
// Metrics are registered once (typically in a package-level var block)
// and updated lock-free on hot paths. A process-wide kill switch —
// SetEnabled(false) — turns every update into a single atomic load and
// branch, so instrumented code costs near nothing when measurement is
// off. Snapshots (Capture) serialise the whole registry plus the span
// table for the JSON telemetry reports leaps-train and leaps-detect
// write next to their outputs.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// disabled is the process-wide kill switch. The zero value means enabled,
// so instrumented packages measure by default and callers opt out.
var disabled atomic.Bool

// SetEnabled turns the whole telemetry layer on or off. When off, every
// counter increment, gauge store, histogram observation and span degrades
// to one atomic load and a branch.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether telemetry updates are being recorded.
func Enabled() bool { return !disabled.Load() }

// metric is the common behaviour of every registered instrument.
type metric interface {
	metricName() string
	snapshot() []MetricSnapshot
}

// Registry holds named instruments. Registration is get-or-create: asking
// twice for the same name and kind returns the same instrument, so
// package-level var blocks stay idempotent under repeated test binaries.
// Asking for an existing name with a different kind panics — that is a
// programming error, not a runtime condition.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry. Most code uses Default instead.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry all package-level instruments
// register on.
func Default() *Registry { return defaultRegistry }

// register implements get-or-create with kind checking.
func (r *Registry) register(name string, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := mk()
	r.metrics[name] = m
	return m
}

// Counter returns the named monotonic counter, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, func() metric { return &Counter{name: name, help: help} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, func() metric { return &Gauge{name: name, help: help} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket upper bounds if needed (an implicit +Inf bucket is
// always appended).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.register(name, func() metric { return newHistogram(name, help, bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return h
}

// CounterVec returns the named counter family keyed by one label,
// creating it if needed.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	m := r.register(name, func() metric {
		return &CounterVec{name: name, help: help, label: label, children: make(map[string]*Counter)}
	})
	v, ok := m.(*CounterVec)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return v
}

// HistogramVec returns the named histogram family keyed by one label,
// creating it with the given bucket layout if needed.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	m := r.register(name, func() metric {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		return &HistogramVec{name: name, help: help, label: label, bounds: b,
			children: make(map[string]*Histogram)}
	})
	v, ok := m.(*HistogramVec)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return v
}

// Reset zeroes every instrument in the registry (labeled children are
// dropped entirely). Meant for tests and for CLIs separating runs.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.metrics {
		switch m := m.(type) {
		case *Counter:
			m.v.Store(0)
		case *Gauge:
			m.bits.Store(0)
		case *Histogram:
			m.reset()
		case *CounterVec:
			m.mu.Lock()
			m.children = make(map[string]*Counter)
			m.mu.Unlock()
		case *HistogramVec:
			m.mu.Lock()
			m.children = make(map[string]*Histogram)
			m.mu.Unlock()
		}
	}
}

// Snapshot returns a point-in-time copy of every instrument, sorted by
// name (then label value) for stable output.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	ms := make([]metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	var out []MetricSnapshot
	for _, m := range ms {
		out = append(out, m.snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].LabelValue < out[j].LabelValue
	})
	return out
}

// Package-level conveniences registering on the Default registry.

// NewCounter registers a counter on the default registry.
func NewCounter(name, help string) *Counter { return Default().Counter(name, help) }

// NewGauge registers a gauge on the default registry.
func NewGauge(name, help string) *Gauge { return Default().Gauge(name, help) }

// NewHistogram registers a histogram on the default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return Default().Histogram(name, help, bounds)
}

// NewCounterVec registers a labeled counter family on the default
// registry.
func NewCounterVec(name, help, label string) *CounterVec {
	return Default().CounterVec(name, help, label)
}

// NewHistogramVec registers a labeled histogram family on the default
// registry.
func NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	return Default().HistogramVec(name, help, label, bounds)
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	name, help string
	labelKey   string
	labelVal   string
	v          atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if disabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }

func (c *Counter) snapshot() []MetricSnapshot {
	s := MetricSnapshot{Name: c.name, Kind: "counter", Help: c.help, Value: float64(c.v.Load())}
	s.Label, s.LabelValue = c.labelKey, c.labelVal
	return []MetricSnapshot{s}
}

// Gauge is a float64 that can go up and down.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if disabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if disabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) metricName() string { return g.name }

func (g *Gauge) snapshot() []MetricSnapshot {
	return []MetricSnapshot{{Name: g.name, Kind: "gauge", Help: g.help, Value: g.Value()}}
}

// Exemplar is one sampled observation annotated with the trace it came
// from — the join key between a latency histogram bucket and the
// request that landed in it.
type Exemplar struct {
	// Value is the observed value.
	Value float64 `json:"value"`
	// TraceID is the hex trace ID of the observing request.
	TraceID string `json:"trace_id"`
	// Time is when the observation was recorded.
	Time time.Time `json:"time"`
}

// Histogram counts observations into a fixed ascending bucket layout.
// Bucket counts are non-cumulative internally and cumulated at snapshot
// time, Prometheus-style. Each bucket keeps the most recent traced
// observation as its exemplar.
type Histogram struct {
	name, help string
	labelKey   string
	labelVal   string
	bounds     []float64 // ascending upper bounds; implicit +Inf after
	counts     []atomic.Uint64
	exemplars  []atomic.Pointer[Exemplar]
	sumBits    atomic.Uint64
	count      atomic.Uint64
}

func newHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending", name))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{name: name, help: help, bounds: b,
		counts:    make([]atomic.Uint64, len(b)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(b)+1)}
}

// bucketIndex returns which bucket v lands in.
func (h *Histogram) bucketIndex(v float64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if disabled.Load() {
		return
	}
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveTraced records one value and, when traceID is non-empty,
// replaces the landing bucket's exemplar with this observation.
func (h *Histogram) ObserveTraced(v float64, traceID string) {
	if disabled.Load() {
		return
	}
	h.Observe(v)
	if traceID == "" {
		return
	}
	h.exemplars[h.bucketIndex(v)].Store(&Exemplar{Value: v, TraceID: traceID, Time: time.Now()})
}

// reset zeroes the histogram's counters and drops its exemplars.
func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
		h.exemplars[i].Store(nil)
	}
	h.sumBits.Store(0)
	h.count.Store(0)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) metricName() string { return h.name }

func (h *Histogram) snapshot() []MetricSnapshot {
	s := MetricSnapshot{
		Name:  h.name,
		Kind:  "histogram",
		Help:  h.help,
		Value: h.Sum(),
		Count: h.count.Load(),
	}
	s.Label, s.LabelValue = h.labelKey, h.labelVal
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, Bucket{UpperBound: ub, Count: cum, Exemplar: h.exemplars[i].Load()})
	}
	return []MetricSnapshot{s}
}

// MaxLabelCardinality caps how many distinct label values a labeled
// family (CounterVec, HistogramVec) will materialise. Values arriving
// past the cap are folded into a single overflow child labeled
// OverflowLabel, so hostile or buggy label values — session IDs, raw
// error strings — cannot grow the registry (and every scrape) without
// bound. The overflow child's count surfaces in Snapshot() like any
// other child, making the drop itself observable.
const MaxLabelCardinality = 64

// OverflowLabel is the label value of the fold-in child that absorbs
// updates for values past MaxLabelCardinality.
const OverflowLabel = "_overflow"

// CounterVec is a family of counters distinguished by one label value
// (e.g. etl_skipped_records_total{cause=...}). Hot paths should resolve
// With once and cache the child counter. Distinct label values are
// capped at MaxLabelCardinality; the excess folds into OverflowLabel.
type CounterVec struct {
	name, help, label string
	mu                sync.RWMutex
	children          map[string]*Counter
}

// With returns the child counter for the given label value, creating it
// on first use. Past MaxLabelCardinality distinct values it returns the
// shared overflow child instead.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.children[value]; ok {
		return c
	}
	if len(v.children) >= MaxLabelCardinality {
		value = OverflowLabel
		if c, ok = v.children[value]; ok {
			return c
		}
	}
	c = &Counter{name: v.name, help: v.help, labelKey: v.label, labelVal: value}
	v.children[value] = c
	return c
}

// Overflowed returns how many updates were folded into the overflow
// child (0 when the cardinality cap was never reached).
func (v *CounterVec) Overflowed() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if c, ok := v.children[OverflowLabel]; ok {
		return c.Value()
	}
	return 0
}

func (v *CounterVec) metricName() string { return v.name }

func (v *CounterVec) snapshot() []MetricSnapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]MetricSnapshot, 0, len(v.children))
	for _, c := range v.children {
		out = append(out, c.snapshot()...)
	}
	return out
}

// HistogramVec is a family of histograms distinguished by one label
// value (e.g. serve_http_seconds{route=...}), sharing one bucket
// layout. Distinct label values are capped at MaxLabelCardinality; the
// excess folds into OverflowLabel.
type HistogramVec struct {
	name, help, label string
	bounds            []float64
	mu                sync.RWMutex
	children          map[string]*Histogram
}

// With returns the child histogram for the given label value, creating
// it on first use. Past MaxLabelCardinality distinct values it returns
// the shared overflow child instead.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok = v.children[value]; ok {
		return h
	}
	if len(v.children) >= MaxLabelCardinality {
		value = OverflowLabel
		if h, ok = v.children[value]; ok {
			return h
		}
	}
	h = newHistogram(v.name, v.help, v.bounds)
	h.labelKey, h.labelVal = v.label, value
	v.children[value] = h
	return h
}

func (v *HistogramVec) metricName() string { return v.name }

func (v *HistogramVec) snapshot() []MetricSnapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]MetricSnapshot, 0, len(v.children))
	for _, h := range v.children {
		out = append(out, h.snapshot()...)
	}
	return out
}

// LinearBuckets returns n ascending bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n ascending bounds start, start·factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets is the shared latency layout: 1µs to ~67s in powers of
// four, in seconds.
func DurationBuckets() []float64 { return ExpBuckets(1e-6, 4, 14) }

// CountBuckets is the shared iteration/count layout: 1 to ~262k in powers
// of four.
func CountBuckets() []float64 { return ExpBuckets(1, 4, 10) }

// UnitBuckets is the shared [0,1] layout in steps of 0.1 (weights,
// ratios, probabilities).
func UnitBuckets() []float64 { return LinearBuckets(0.1, 0.1, 10) }
