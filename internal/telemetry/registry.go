// Package telemetry is the measurement substrate of the repository: a
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket histograms, optionally labeled), a lightweight span tracer
// for pipeline stages, and the debug HTTP surface (/metrics, /spans,
// expvar, pprof) the CLIs expose behind -debug-addr.
//
// Metrics are registered once (typically in a package-level var block)
// and updated lock-free on hot paths. A process-wide kill switch —
// SetEnabled(false) — turns every update into a single atomic load and
// branch, so instrumented code costs near nothing when measurement is
// off. Snapshots (Capture) serialise the whole registry plus the span
// table for the JSON telemetry reports leaps-train and leaps-detect
// write next to their outputs.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// disabled is the process-wide kill switch. The zero value means enabled,
// so instrumented packages measure by default and callers opt out.
var disabled atomic.Bool

// SetEnabled turns the whole telemetry layer on or off. When off, every
// counter increment, gauge store, histogram observation and span degrades
// to one atomic load and a branch.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether telemetry updates are being recorded.
func Enabled() bool { return !disabled.Load() }

// metric is the common behaviour of every registered instrument.
type metric interface {
	metricName() string
	snapshot() []MetricSnapshot
}

// Registry holds named instruments. Registration is get-or-create: asking
// twice for the same name and kind returns the same instrument, so
// package-level var blocks stay idempotent under repeated test binaries.
// Asking for an existing name with a different kind panics — that is a
// programming error, not a runtime condition.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry. Most code uses Default instead.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry all package-level instruments
// register on.
func Default() *Registry { return defaultRegistry }

// register implements get-or-create with kind checking.
func (r *Registry) register(name string, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := mk()
	r.metrics[name] = m
	return m
}

// Counter returns the named monotonic counter, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, func() metric { return &Counter{name: name, help: help} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, func() metric { return &Gauge{name: name, help: help} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket upper bounds if needed (an implicit +Inf bucket is
// always appended).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.register(name, func() metric { return newHistogram(name, help, bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return h
}

// CounterVec returns the named counter family keyed by one label,
// creating it if needed.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	m := r.register(name, func() metric {
		return &CounterVec{name: name, help: help, label: label, children: make(map[string]*Counter)}
	})
	v, ok := m.(*CounterVec)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return v
}

// Reset zeroes every instrument in the registry (labeled children are
// dropped entirely). Meant for tests and for CLIs separating runs.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.metrics {
		switch m := m.(type) {
		case *Counter:
			m.v.Store(0)
		case *Gauge:
			m.bits.Store(0)
		case *Histogram:
			for i := range m.counts {
				m.counts[i].Store(0)
			}
			m.sumBits.Store(0)
			m.count.Store(0)
		case *CounterVec:
			m.mu.Lock()
			m.children = make(map[string]*Counter)
			m.mu.Unlock()
		}
	}
}

// Snapshot returns a point-in-time copy of every instrument, sorted by
// name (then label value) for stable output.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	ms := make([]metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	var out []MetricSnapshot
	for _, m := range ms {
		out = append(out, m.snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].LabelValue < out[j].LabelValue
	})
	return out
}

// Package-level conveniences registering on the Default registry.

// NewCounter registers a counter on the default registry.
func NewCounter(name, help string) *Counter { return Default().Counter(name, help) }

// NewGauge registers a gauge on the default registry.
func NewGauge(name, help string) *Gauge { return Default().Gauge(name, help) }

// NewHistogram registers a histogram on the default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return Default().Histogram(name, help, bounds)
}

// NewCounterVec registers a labeled counter family on the default
// registry.
func NewCounterVec(name, help, label string) *CounterVec {
	return Default().CounterVec(name, help, label)
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	name, help string
	labelKey   string
	labelVal   string
	v          atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if disabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }

func (c *Counter) snapshot() []MetricSnapshot {
	s := MetricSnapshot{Name: c.name, Kind: "counter", Help: c.help, Value: float64(c.v.Load())}
	s.Label, s.LabelValue = c.labelKey, c.labelVal
	return []MetricSnapshot{s}
}

// Gauge is a float64 that can go up and down.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if disabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if disabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) metricName() string { return g.name }

func (g *Gauge) snapshot() []MetricSnapshot {
	return []MetricSnapshot{{Name: g.name, Kind: "gauge", Help: g.help, Value: g.Value()}}
}

// Histogram counts observations into a fixed ascending bucket layout.
// Bucket counts are non-cumulative internally and cumulated at snapshot
// time, Prometheus-style.
type Histogram struct {
	name, help string
	bounds     []float64 // ascending upper bounds; implicit +Inf after
	counts     []atomic.Uint64
	sumBits    atomic.Uint64
	count      atomic.Uint64
}

func newHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending", name))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{name: name, help: help, bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if disabled.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) metricName() string { return h.name }

func (h *Histogram) snapshot() []MetricSnapshot {
	s := MetricSnapshot{
		Name:  h.name,
		Kind:  "histogram",
		Help:  h.help,
		Value: h.Sum(),
		Count: h.count.Load(),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, Bucket{UpperBound: ub, Count: cum})
	}
	return []MetricSnapshot{s}
}

// CounterVec is a family of counters distinguished by one label value
// (e.g. etl_skipped_records_total{cause=...}). Hot paths should resolve
// With once and cache the child counter.
type CounterVec struct {
	name, help, label string
	mu                sync.RWMutex
	children          map[string]*Counter
}

// With returns the child counter for the given label value, creating it
// on first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.children[value]; ok {
		return c
	}
	c = &Counter{name: v.name, help: v.help, labelKey: v.label, labelVal: value}
	v.children[value] = c
	return c
}

func (v *CounterVec) metricName() string { return v.name }

func (v *CounterVec) snapshot() []MetricSnapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]MetricSnapshot, 0, len(v.children))
	for _, c := range v.children {
		out = append(out, c.snapshot()...)
	}
	return out
}

// LinearBuckets returns n ascending bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n ascending bounds start, start·factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets is the shared latency layout: 1µs to ~67s in powers of
// four, in seconds.
func DurationBuckets() []float64 { return ExpBuckets(1e-6, 4, 14) }

// CountBuckets is the shared iteration/count layout: 1 to ~262k in powers
// of four.
func CountBuckets() []float64 { return ExpBuckets(1, 4, 10) }

// UnitBuckets is the shared [0,1] layout in steps of 0.1 (weights,
// ratios, probabilities).
func UnitBuckets() []float64 { return LinearBuckets(0.1, 0.1, 10) }
