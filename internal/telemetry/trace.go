package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
)

// Request-scoped tracing: 128-bit trace IDs and 64-bit span IDs carried
// through context.Context and propagated over HTTP in a W3C
// traceparent-style header. One trace ID follows an event batch from the
// serve API through the worker pool, the streaming detector and the
// shadow canary, and a retraining cycle through its journal transitions,
// registry publish, gate decision and promotion. The IDs link three
// sinks: span completions and verdict summaries in the flight recorder,
// exemplars on latency histograms, and slogx records logged with a
// tracing context.

// TraceID is a 128-bit request/cycle identifier, rendered as 32 hex
// digits. The zero value means "no trace".
type TraceID [16]byte

// SpanID is a 64-bit identifier for one hop within a trace, rendered as
// 16 hex digits.
type SpanID [8]byte

// NewTraceID returns a fresh random trace ID. IDs are drawn from
// crypto/rand, so concurrent generators never collide in practice.
func NewTraceID() TraceID {
	var t TraceID
	mustRandom(t[:])
	return t
}

// NewSpanID returns a fresh random span ID.
func NewSpanID() SpanID {
	var s SpanID
	mustRandom(s[:])
	return s
}

// mustRandom fills b from crypto/rand; ID generation has no sane
// degraded mode, so a failing entropy source is fatal.
func mustRandom(b []byte) {
	if _, err := rand.Read(b); err != nil {
		panic(fmt.Sprintf("telemetry: reading random ID: %v", err))
	}
}

// IsZero reports the absent trace ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the trace ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports the absent span ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the span ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// TraceContext is one hop of a trace: the trace it belongs to and the
// span identifying this hop.
type TraceContext struct {
	// Trace is the 128-bit trace the hop belongs to.
	Trace TraceID
	// Span identifies this hop within the trace.
	Span SpanID
}

// Valid reports whether the context carries a usable (non-zero) trace.
func (tc TraceContext) Valid() bool { return !tc.Trace.IsZero() && !tc.Span.IsZero() }

// TraceParent renders the context in the W3C traceparent layout:
// version 00, 32-hex trace ID, 16-hex span ID, flags 01 (sampled).
func (tc TraceContext) TraceParent() string {
	return "00-" + tc.Trace.String() + "-" + tc.Span.String() + "-01"
}

// Child returns a context in the same trace with a fresh span ID — the
// shape a server derives from an inbound traceparent so its own work is
// distinguishable from the caller's.
func (tc TraceContext) Child() TraceContext {
	return TraceContext{Trace: tc.Trace, Span: NewSpanID()}
}

// ParseTraceParent parses a traceparent-style header. It accepts any
// version byte (per the W3C forward-compatibility rule) but rejects
// malformed fields and the all-zero trace or span ID.
func ParseTraceParent(s string) (TraceContext, bool) {
	// version(2) - trace(32) - span(16) - flags(2), dash-separated.
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceContext{}, false
	}
	if len(s) > 55 && s[55] != '-' {
		return TraceContext{}, false
	}
	var tc TraceContext
	if !hexDecode(tc.Trace[:], s[3:35]) || !hexDecode(tc.Span[:], s[36:52]) {
		return TraceContext{}, false
	}
	if !hexValid(s[0:2]) || !hexValid(s[53:55]) {
		return TraceContext{}, false
	}
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

// hexDecode fills dst from the hex string s, reporting success.
func hexDecode(dst []byte, s string) bool {
	n, err := hex.Decode(dst, []byte(s))
	return err == nil && n == len(dst)
}

// hexValid reports whether s is entirely hex digits.
func hexValid(s string) bool {
	var b [4]byte
	if len(s) > len(b)*2 || len(s)%2 != 0 {
		return false
	}
	_, err := hex.Decode(b[:], []byte(s))
	return err == nil
}

// traceCtxKey keys the TraceContext carried in a context.Context.
type traceCtxKey struct{}

// WithTraceContext returns ctx carrying tc.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom returns the trace context carried by ctx, if any.
func TraceContextFrom(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}

// EnsureTraceContext returns ctx carrying a valid trace context,
// minting a fresh trace when none is present. The carried context is
// returned alongside for callers that propagate it outward (headers,
// exemplars, flight-recorder entries).
func EnsureTraceContext(ctx context.Context) (context.Context, TraceContext) {
	if tc, ok := TraceContextFrom(ctx); ok {
		return ctx, tc
	}
	tc := TraceContext{Trace: NewTraceID(), Span: NewSpanID()}
	return WithTraceContext(ctx, tc), tc
}

// TraceIDFrom returns the hex trace ID carried by ctx, or "" when the
// context carries none — the form metric exemplars and flight-recorder
// entries want.
func TraceIDFrom(ctx context.Context) string {
	if tc, ok := TraceContextFrom(ctx); ok {
		return tc.Trace.String()
	}
	return ""
}
