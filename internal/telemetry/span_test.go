package telemetry

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	ResetSpans()
	ctx, root := StartSpan(context.Background(), "train")
	_, child := StartSpan(ctx, "smo")
	time.Sleep(time.Millisecond)
	child.End()
	root.End()

	report := SpanReport()
	if len(report) != 2 {
		t.Fatalf("report has %d paths, want 2: %+v", len(report), report)
	}
	// Sorted by path: "train" before "train/smo".
	if report[0].Path != "train" || report[1].Path != "train/smo" {
		t.Fatalf("paths = %q, %q", report[0].Path, report[1].Path)
	}
	if report[1].Count != 1 || report[1].Total <= 0 {
		t.Errorf("child stats wrong: %+v", report[1])
	}
	if report[0].Total < report[1].Total {
		t.Error("parent total shorter than child total")
	}
}

func TestSpanAggregation(t *testing.T) {
	ResetSpans()
	for i := 0; i < 5; i++ {
		_, s := StartSpan(context.Background(), "stage")
		s.End()
	}
	report := SpanReport()
	if len(report) != 1 || report[0].Count != 5 {
		t.Fatalf("aggregation failed: %+v", report)
	}
	if report[0].Min > report[0].Max || report[0].Total < report[0].Max {
		t.Errorf("inconsistent min/max/total: %+v", report[0])
	}
}

func TestSpanDisabledIsNil(t *testing.T) {
	ResetSpans()
	SetEnabled(false)
	defer SetEnabled(true)
	ctx, s := StartSpan(context.Background(), "off")
	if s != nil {
		t.Error("disabled StartSpan returned a live span")
	}
	s.End() // must not panic
	if ctx.Value(spanCtxKey{}) != nil {
		t.Error("disabled StartSpan still annotated the context")
	}
	if len(SpanReport()) != 0 {
		t.Error("disabled span recorded stats")
	}
}

func TestSpanConcurrent(t *testing.T) {
	ResetSpans()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, s := StartSpan(context.Background(), "conc")
				s.End()
			}
		}()
	}
	wg.Wait()
	report := SpanReport()
	if len(report) != 1 || report[0].Count != 1600 {
		t.Fatalf("concurrent aggregation lost spans: %+v", report)
	}
}

func TestWriteSpansTextIndents(t *testing.T) {
	ResetSpans()
	ctx, root := StartSpan(context.Background(), "detect")
	_, child := StartSpan(ctx, "score")
	child.End()
	root.End()
	var buf bytes.Buffer
	if err := WriteSpansText(&buf, SpanReport()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "detect") {
		t.Errorf("parent line not flush left: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  detect/score") {
		t.Errorf("child line not indented: %q", lines[1])
	}
}
