// Package slogx is the repository's thin wrapper over log/slog: one
// process-wide leveled logger the CLIs configure from their flags, so
// every status line that used to be an ad-hoc fmt.Printf is now a
// machine-parseable key=value (or JSON) record with a level, while
// staying readable on a terminal.
package slogx

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Options configures the process logger.
type Options struct {
	// Writer defaults to os.Stderr.
	Writer io.Writer
	// Level is the minimum level emitted (default Info).
	Level slog.Level
	// JSON selects the JSON handler instead of the text handler.
	JSON bool
}

var current atomic.Pointer[slog.Logger]

func init() {
	current.Store(build(Options{}))
}

func build(o Options) *slog.Logger {
	w := o.Writer
	if w == nil {
		w = os.Stderr
	}
	ho := &slog.HandlerOptions{Level: o.Level}
	var h slog.Handler
	if o.JSON {
		h = slog.NewJSONHandler(w, ho)
	} else {
		h = slog.NewTextHandler(w, ho)
	}
	return slog.New(flightHandler{next: h})
}

// flightHandler tees every emitted record into the telemetry flight
// recorder (kind "log"), so recent log lines appear in flight dumps
// next to the spans and verdicts they narrate. Level filtering has
// already happened by the time Handle runs, so the ring sees exactly
// what the operator's log stream sees. Attrs bound with Logger.With and
// group prefixes opened with WithGroup are accumulated here so derived
// loggers' flight entries carry the same context their log lines do.
type flightHandler struct {
	next slog.Handler
	// bound holds attrs from WithAttrs, already rendered and
	// group-prefixed; never mutated after construction (WithAttrs copies).
	bound map[string]string
	// prefix is the dot-joined open group path applied to attr keys.
	prefix string
}

// Enabled delegates level filtering to the wrapped handler.
func (h flightHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.next.Enabled(ctx, level)
}

// Handle records the entry in the flight recorder, then delegates. The
// recorder map is only built when telemetry is on — the tee must cost
// nothing beyond the wrapped handler when the ring is disabled.
func (h flightHandler) Handle(ctx context.Context, r slog.Record) error {
	if telemetry.Enabled() {
		attrs := make(map[string]string, len(h.bound)+r.NumAttrs()+1)
		for k, v := range h.bound {
			attrs[k] = v
		}
		attrs["level"] = r.Level.String()
		r.Attrs(func(a slog.Attr) bool {
			flattenAttr(attrs, h.prefix, a)
			return true
		})
		telemetry.RecordFlight(telemetry.FlightEntry{
			Time:  r.Time,
			Kind:  "log",
			Name:  r.Message,
			Trace: telemetry.TraceIDFrom(ctx),
			Attrs: attrs,
		})
	}
	return h.next.Handle(ctx, r)
}

// flattenAttr renders one attr into dst under the group prefix,
// expanding slog.Group values the way the text handler does
// (group.key=value).
func flattenAttr(dst map[string]string, prefix string, a slog.Attr) {
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		p := prefix
		if a.Key != "" {
			p += a.Key + "."
		}
		for _, ga := range v.Group() {
			flattenAttr(dst, p, ga)
		}
		return
	}
	dst[prefix+a.Key] = fmt.Sprint(v.Any())
}

// WithAttrs keeps the tee on derived handlers, folding the newly bound
// attrs into the recorded context.
func (h flightHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	bound := make(map[string]string, len(h.bound)+len(attrs))
	for k, v := range h.bound {
		bound[k] = v
	}
	for _, a := range attrs {
		flattenAttr(bound, h.prefix, a)
	}
	return flightHandler{next: h.next.WithAttrs(attrs), bound: bound, prefix: h.prefix}
}

// WithGroup keeps the tee on derived handlers, extending the prefix
// later attrs are recorded under.
func (h flightHandler) WithGroup(name string) slog.Handler {
	prefix := h.prefix
	if name != "" {
		prefix += name + "."
	}
	return flightHandler{next: h.next.WithGroup(name), bound: h.bound, prefix: prefix}
}

// Configure replaces the process logger and returns it.
func Configure(o Options) *slog.Logger {
	l := build(o)
	current.Store(l)
	return l
}

// L returns the process logger.
func L() *slog.Logger { return current.Load() }

// Info logs at info level on the process logger.
func Info(msg string, args ...any) { L().Info(msg, args...) }

// Warn logs at warn level on the process logger.
func Warn(msg string, args ...any) { L().Warn(msg, args...) }

// Error logs at error level on the process logger.
func Error(msg string, args ...any) { L().Error(msg, args...) }

// Debug logs at debug level on the process logger.
func Debug(msg string, args ...any) { L().Debug(msg, args...) }

// CLILevel maps the shared -quiet/-verbose CLI flags to a level: quiet
// wins and raises the floor to Warn, verbose lowers it to Debug.
func CLILevel(quiet, verbose bool) slog.Level {
	switch {
	case quiet:
		return slog.LevelWarn
	case verbose:
		return slog.LevelDebug
	default:
		return slog.LevelInfo
	}
}
