// Package slogx is the repository's thin wrapper over log/slog: one
// process-wide leveled logger the CLIs configure from their flags, so
// every status line that used to be an ad-hoc fmt.Printf is now a
// machine-parseable key=value (or JSON) record with a level, while
// staying readable on a terminal.
package slogx

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Options configures the process logger.
type Options struct {
	// Writer defaults to os.Stderr.
	Writer io.Writer
	// Level is the minimum level emitted (default Info).
	Level slog.Level
	// JSON selects the JSON handler instead of the text handler.
	JSON bool
}

var current atomic.Pointer[slog.Logger]

func init() {
	current.Store(build(Options{}))
}

func build(o Options) *slog.Logger {
	w := o.Writer
	if w == nil {
		w = os.Stderr
	}
	ho := &slog.HandlerOptions{Level: o.Level}
	var h slog.Handler
	if o.JSON {
		h = slog.NewJSONHandler(w, ho)
	} else {
		h = slog.NewTextHandler(w, ho)
	}
	return slog.New(flightHandler{h})
}

// flightHandler tees every emitted record into the telemetry flight
// recorder (kind "log"), so recent log lines appear in flight dumps
// next to the spans and verdicts they narrate. Level filtering has
// already happened by the time Handle runs, so the ring sees exactly
// what the operator's log stream sees.
type flightHandler struct {
	slog.Handler
}

// Handle records the entry in the flight recorder, then delegates.
func (h flightHandler) Handle(ctx context.Context, r slog.Record) error {
	attrs := make(map[string]string, r.NumAttrs()+1)
	attrs["level"] = r.Level.String()
	r.Attrs(func(a slog.Attr) bool {
		attrs[a.Key] = fmt.Sprint(a.Value.Any())
		return true
	})
	telemetry.RecordFlight(telemetry.FlightEntry{
		Time:  r.Time,
		Kind:  "log",
		Name:  r.Message,
		Trace: telemetry.TraceIDFrom(ctx),
		Attrs: attrs,
	})
	return h.Handler.Handle(ctx, r)
}

// WithAttrs keeps the tee on derived handlers.
func (h flightHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return flightHandler{h.Handler.WithAttrs(attrs)}
}

// WithGroup keeps the tee on derived handlers.
func (h flightHandler) WithGroup(name string) slog.Handler {
	return flightHandler{h.Handler.WithGroup(name)}
}

// Configure replaces the process logger and returns it.
func Configure(o Options) *slog.Logger {
	l := build(o)
	current.Store(l)
	return l
}

// L returns the process logger.
func L() *slog.Logger { return current.Load() }

// Info logs at info level on the process logger.
func Info(msg string, args ...any) { L().Info(msg, args...) }

// Warn logs at warn level on the process logger.
func Warn(msg string, args ...any) { L().Warn(msg, args...) }

// Error logs at error level on the process logger.
func Error(msg string, args ...any) { L().Error(msg, args...) }

// Debug logs at debug level on the process logger.
func Debug(msg string, args ...any) { L().Debug(msg, args...) }

// CLILevel maps the shared -quiet/-verbose CLI flags to a level: quiet
// wins and raises the floor to Warn, verbose lowers it to Debug.
func CLILevel(quiet, verbose bool) slog.Level {
	switch {
	case quiet:
		return slog.LevelWarn
	case verbose:
		return slog.LevelDebug
	default:
		return slog.LevelInfo
	}
}
