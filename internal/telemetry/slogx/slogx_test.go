package slogx

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestConfigureTextAndLevels(t *testing.T) {
	var buf bytes.Buffer
	Configure(Options{Writer: &buf, Level: slog.LevelInfo})
	Debug("hidden")
	Info("parsed log", "events", 42, "skipped", 3)
	Warn("degraded")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Error("debug line emitted at info level")
	}
	if !strings.Contains(out, "msg=\"parsed log\"") || !strings.Contains(out, "events=42") {
		t.Errorf("info line not key=value formatted:\n%s", out)
	}
	if !strings.Contains(out, "level=WARN") {
		t.Errorf("warn level missing:\n%s", out)
	}
}

func TestConfigureJSON(t *testing.T) {
	var buf bytes.Buffer
	Configure(Options{Writer: &buf, JSON: true})
	Info("wrote model", "path", "/tmp/x.model")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("JSON log line invalid: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "wrote model" || rec["path"] != "/tmp/x.model" {
		t.Errorf("JSON record = %v", rec)
	}
}

func TestQuietSuppressesInfo(t *testing.T) {
	var buf bytes.Buffer
	Configure(Options{Writer: &buf, Level: CLILevel(true, false)})
	Info("progress")
	Error("boom", "cause", "x")
	if strings.Contains(buf.String(), "progress") {
		t.Error("quiet level still emitted info")
	}
	if !strings.Contains(buf.String(), "boom") {
		t.Error("quiet level swallowed errors")
	}
}

func TestCLILevel(t *testing.T) {
	if CLILevel(true, true) != slog.LevelWarn {
		t.Error("quiet should win over verbose")
	}
	if CLILevel(false, true) != slog.LevelDebug {
		t.Error("verbose should lower to debug")
	}
	if CLILevel(false, false) != slog.LevelInfo {
		t.Error("default should be info")
	}
}

func TestLNeverNil(t *testing.T) {
	if L() == nil {
		t.Fatal("default logger is nil")
	}
}
