package slogx

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// lastFlightLog returns the newest "log" entry in the flight ring.
func lastFlightLog(t *testing.T) telemetry.FlightEntry {
	t.Helper()
	entries := telemetry.Flight().Snapshot()
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].Kind == "log" {
			return entries[i]
		}
	}
	t.Fatal("no log entry in the flight recorder")
	return telemetry.FlightEntry{}
}

// TestFlightTeeCarriesBoundAttrsAndGroups checks that attrs bound with
// Logger.With and group prefixes opened with WithGroup survive into the
// flight-recorder entries, alongside the per-call attrs.
func TestFlightTeeCarriesBoundAttrsAndGroups(t *testing.T) {
	telemetry.Flight().Reset()
	defer telemetry.Flight().Reset()
	var buf bytes.Buffer
	l := Configure(Options{Writer: &buf})

	l.With("component", "autopilot").Info("cycle started", "cycle", 3)
	e := lastFlightLog(t)
	if e.Attrs["component"] != "autopilot" {
		t.Errorf("bound attr lost: %v", e.Attrs)
	}
	if e.Attrs["cycle"] != "3" || e.Attrs["level"] != "INFO" {
		t.Errorf("per-call attrs wrong: %v", e.Attrs)
	}

	l.WithGroup("gate").With("entry", "m1").Info("rejected", "reason", "fpr")
	e = lastFlightLog(t)
	if e.Attrs["gate.entry"] != "m1" || e.Attrs["gate.reason"] != "fpr" {
		t.Errorf("group prefix lost: %v", e.Attrs)
	}

	l.Info("grouped value", slog.Group("cmp", slog.Int("events", 9)))
	e = lastFlightLog(t)
	if e.Attrs["cmp.events"] != "9" {
		t.Errorf("inline group not flattened: %v", e.Attrs)
	}
}

// TestFlightTeeDisabled checks the tee records nothing (and the log
// line still flows) when telemetry is off.
func TestFlightTeeDisabled(t *testing.T) {
	telemetry.Flight().Reset()
	defer telemetry.Flight().Reset()
	telemetry.SetEnabled(false)
	defer telemetry.SetEnabled(true)
	var buf bytes.Buffer
	Configure(Options{Writer: &buf})
	Info("quiet tee")
	if !strings.Contains(buf.String(), "quiet tee") {
		t.Error("log line lost while telemetry disabled")
	}
	if n := len(telemetry.Flight().Snapshot()); n != 0 {
		t.Errorf("disabled telemetry still recorded %d flight entries", n)
	}
}

func TestConfigureTextAndLevels(t *testing.T) {
	var buf bytes.Buffer
	Configure(Options{Writer: &buf, Level: slog.LevelInfo})
	Debug("hidden")
	Info("parsed log", "events", 42, "skipped", 3)
	Warn("degraded")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Error("debug line emitted at info level")
	}
	if !strings.Contains(out, "msg=\"parsed log\"") || !strings.Contains(out, "events=42") {
		t.Errorf("info line not key=value formatted:\n%s", out)
	}
	if !strings.Contains(out, "level=WARN") {
		t.Errorf("warn level missing:\n%s", out)
	}
}

func TestConfigureJSON(t *testing.T) {
	var buf bytes.Buffer
	Configure(Options{Writer: &buf, JSON: true})
	Info("wrote model", "path", "/tmp/x.model")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("JSON log line invalid: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "wrote model" || rec["path"] != "/tmp/x.model" {
		t.Errorf("JSON record = %v", rec)
	}
}

func TestQuietSuppressesInfo(t *testing.T) {
	var buf bytes.Buffer
	Configure(Options{Writer: &buf, Level: CLILevel(true, false)})
	Info("progress")
	Error("boom", "cause", "x")
	if strings.Contains(buf.String(), "progress") {
		t.Error("quiet level still emitted info")
	}
	if !strings.Contains(buf.String(), "boom") {
		t.Error("quiet level swallowed errors")
	}
}

func TestCLILevel(t *testing.T) {
	if CLILevel(true, true) != slog.LevelWarn {
		t.Error("quiet should win over verbose")
	}
	if CLILevel(false, true) != slog.LevelDebug {
		t.Error("verbose should lower to debug")
	}
	if CLILevel(false, false) != slog.LevelInfo {
		t.Error("default should be info")
	}
}

func TestLNeverNil(t *testing.T) {
	if L() == nil {
		t.Fatal("default logger is nil")
	}
}
