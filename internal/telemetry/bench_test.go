package telemetry

import (
	"context"
	"testing"
)

// The acceptance bar for the detect hot path: a counter increment at or
// under ~10 ns/op, and near-zero when telemetry is disabled.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	c := NewRegistry().Counter("bench_off_total", "")
	SetEnabled(false)
	defer SetEnabled(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_par_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_hist", "", DurationBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}

func BenchmarkCounterVecWith(b *testing.B) {
	v := NewRegistry().CounterVec("bench_vec", "", "cause")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("truncated").Inc()
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	ResetSpans()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "bench")
		s.End()
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	ResetSpans()
	SetEnabled(false)
	defer SetEnabled(true)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "bench")
		s.End()
	}
}
