package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderKeepsNewestEntries(t *testing.T) {
	var f FlightRecorder
	const total = flightSlots + 100
	for i := 0; i < total; i++ {
		f.Record(FlightEntry{Kind: "test", Name: strconv.Itoa(i)})
	}
	if f.Len() != total {
		t.Fatalf("Len = %d, want %d", f.Len(), total)
	}
	got := f.Snapshot()
	if len(got) != flightSlots {
		t.Fatalf("snapshot holds %d entries, want ring capacity %d", len(got), flightSlots)
	}
	for i, e := range got {
		want := strconv.Itoa(total - flightSlots + i)
		if e.Name != want {
			t.Fatalf("entry %d is %q, want %q (oldest first)", i, e.Name, want)
		}
		if e.Time.IsZero() {
			t.Fatalf("entry %d has no timestamp stamped", i)
		}
	}
}

// TestFlightRecorderConcurrent hammers the ring from many writers while
// a reader snapshots (run under -race): no write may be lost from the
// total count and every surfaced entry must be intact.
func TestFlightRecorderConcurrent(t *testing.T) {
	var f FlightRecorder
	const writers, perWriter = 8, 1000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				for _, e := range f.Snapshot() {
					if e.Kind != "w" {
						panic("torn flight entry: " + e.Kind)
					}
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				f.Record(FlightEntry{Kind: "w", Name: fmt.Sprintf("%d-%d", w, i)})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if f.Len() != writers*perWriter {
		t.Fatalf("Len = %d, want %d", f.Len(), writers*perWriter)
	}
	if got := len(f.Snapshot()); got != flightSlots {
		t.Fatalf("snapshot holds %d entries, want full ring %d", got, flightSlots)
	}
}

func TestFlightRecorderReset(t *testing.T) {
	var f FlightRecorder
	f.Record(FlightEntry{Kind: "test", Name: "a"})
	f.Reset()
	if f.Len() != 0 || len(f.Snapshot()) != 0 {
		t.Fatal("Reset left entries behind")
	}
}

func TestWriteFlightDump(t *testing.T) {
	flight.Reset()
	defer flight.Reset()
	RecordFlight(FlightEntry{Kind: "test", Name: "dumped", Trace: "deadbeef"})
	var buf bytes.Buffer
	if err := WriteFlightDump(&buf, "unit-test"); err != nil {
		t.Fatal(err)
	}
	var dump FlightDump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if dump.Reason != "unit-test" || dump.DumpedAt.IsZero() {
		t.Fatalf("dump header wrong: %+v", dump)
	}
	if len(dump.Entries) != 1 || dump.Entries[0].Name != "dumped" || dump.Entries[0].Trace != "deadbeef" {
		t.Fatalf("dump entries wrong: %+v", dump.Entries)
	}
}

func TestDumpFlightToSanitizesReason(t *testing.T) {
	flight.Reset()
	defer flight.Reset()
	RecordFlight(FlightEntry{Kind: "test", Name: "x"})
	dir := t.TempDir()
	path, err := DumpFlightTo(dir, "crashpoint-serve/spool/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(path)
	if filepath.Dir(path) != dir {
		t.Fatalf("dump %q landed outside %q", path, dir)
	}
	if want := "flight-crashpoint-serve-spool-checkpoint-"; len(base) < len(want) || base[:len(want)] != want {
		t.Fatalf("dump filename %q not sanitized", base)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump FlightDump
	if err := json.Unmarshal(blob, &dump); err != nil {
		t.Fatal(err)
	}
	// The reason inside the dump stays verbatim.
	if dump.Reason != "crashpoint-serve/spool/checkpoint" {
		t.Fatalf("dump reason %q not verbatim", dump.Reason)
	}
}

// TestDumpFlightRateLimited checks that trigger-driven dumps sharing a
// reason are spaced at least flightDumpMinGap apart, while distinct
// reasons limit independently.
func TestDumpFlightRateLimited(t *testing.T) {
	old := FlightDir()
	defer SetFlightDir(old)
	SetFlightDir(t.TempDir())

	if DumpFlight("ratelimit-a") == "" {
		t.Fatal("first dump for a reason was suppressed")
	}
	if path := DumpFlight("ratelimit-a"); path != "" {
		t.Fatalf("second dump within the gap wrote %q", path)
	}
	if DumpFlight("ratelimit-b") == "" {
		t.Fatal("a different reason was limited by the first one")
	}

	oldGap := flightDumpMinGap
	defer func() { flightDumpMinGap = oldGap }()
	flightDumpMinGap = 0
	if DumpFlight("ratelimit-a") == "" {
		t.Fatal("dump still suppressed after the gap elapsed")
	}
}

// TestPruneFlightDumps checks that DumpFlightTo retains only the newest
// FlightDumpKeep dumps in its directory.
func TestPruneFlightDumps(t *testing.T) {
	dir := t.TempDir()
	// Pre-seed clearly-older dumps so modtime ordering is unambiguous.
	for i := 0; i < 5; i++ {
		path := filepath.Join(dir, fmt.Sprintf("flight-old-%d.json", i))
		if err := os.WriteFile(path, []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
		past := time.Now().Add(-time.Hour)
		if err := os.Chtimes(path, past, past); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < FlightDumpKeep; i++ {
		if _, err := DumpFlightTo(dir, fmt.Sprintf("new-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != FlightDumpKeep {
		t.Fatalf("%d dumps retained, want %d", len(paths), FlightDumpKeep)
	}
	for _, p := range paths {
		if base := filepath.Base(p); len(base) > 10 && base[:10] == "flight-old" {
			t.Fatalf("pruning kept old dump %s over a newer one", base)
		}
	}
}

func TestDumpFlightNoDirIsNoop(t *testing.T) {
	old := FlightDir()
	defer SetFlightDir(old)
	SetFlightDir("")
	if path := DumpFlight("anything"); path != "" {
		t.Fatalf("DumpFlight with no dir wrote %q", path)
	}
	dir := t.TempDir()
	SetFlightDir(dir)
	path := DumpFlight("configured")
	if path == "" {
		t.Fatal("DumpFlight with a dir configured wrote nothing")
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("dump %q landed outside %q", path, dir)
	}
}
