package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestTraceParentRoundTrip(t *testing.T) {
	tc := TraceContext{Trace: NewTraceID(), Span: NewSpanID()}
	if !tc.Valid() {
		t.Fatal("fresh trace context not valid")
	}
	hdr := tc.TraceParent()
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("traceparent layout wrong: %q", hdr)
	}
	got, ok := ParseTraceParent(hdr)
	if !ok {
		t.Fatalf("ParseTraceParent rejected own output %q", hdr)
	}
	if got != tc {
		t.Fatalf("round trip changed the context: %+v != %+v", got, tc)
	}
}

func TestTraceContextChild(t *testing.T) {
	parent := TraceContext{Trace: NewTraceID(), Span: NewSpanID()}
	child := parent.Child()
	if child.Trace != parent.Trace {
		t.Fatal("child left the parent's trace")
	}
	if child.Span == parent.Span {
		t.Fatal("child reused the parent's span ID")
	}
	if !child.Valid() {
		t.Fatal("child context not valid")
	}
}

func TestParseTraceParentRejects(t *testing.T) {
	valid := TraceContext{Trace: NewTraceID(), Span: NewSpanID()}.TraceParent()
	cases := map[string]string{
		"empty":          "",
		"truncated":      valid[:54],
		"bad separators": strings.Replace(valid, "-", "_", 1),
		"non-hex trace":  "00-zz" + valid[5:],
		"non-hex flags":  valid[:53] + "zz",
		"zero trace":     "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero span":      "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"long no dash":   valid + "x",
	}
	for name, in := range cases {
		if _, ok := ParseTraceParent(in); ok {
			t.Errorf("%s: ParseTraceParent(%q) accepted", name, in)
		}
	}
	// The W3C forward-compatibility rule: later versions may append
	// dash-separated fields.
	if _, ok := ParseTraceParent(valid + "-extra"); !ok {
		t.Error("future-version suffix rejected")
	}
	if _, ok := ParseTraceParent("cc" + valid[2:]); !ok {
		t.Error("unknown version byte rejected")
	}
}

func TestTraceContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if _, ok := TraceContextFrom(ctx); ok {
		t.Fatal("empty context claims a trace")
	}
	if got := TraceIDFrom(ctx); got != "" {
		t.Fatalf("TraceIDFrom(empty) = %q, want \"\"", got)
	}

	ctx2, minted := EnsureTraceContext(ctx)
	if !minted.Valid() {
		t.Fatal("EnsureTraceContext minted an invalid context")
	}
	if got, ok := TraceContextFrom(ctx2); !ok || got != minted {
		t.Fatal("minted context not carried")
	}
	// Ensure on an already-traced context is a no-op.
	ctx3, again := EnsureTraceContext(ctx2)
	if again != minted || ctx3 != ctx2 {
		t.Fatal("EnsureTraceContext re-minted over an existing trace")
	}
	if got := TraceIDFrom(ctx2); got != minted.Trace.String() {
		t.Fatalf("TraceIDFrom = %q, want %q", got, minted.Trace.String())
	}
}

// TestConcurrentTraceIDsUnique generates IDs from many goroutines at
// once (run under -race) and requires them all distinct: the generator
// must be both safe and collision-free.
func TestConcurrentTraceIDsUnique(t *testing.T) {
	const workers, perWorker = 16, 512
	var wg sync.WaitGroup
	ids := make([][]TraceID, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]TraceID, perWorker)
			for i := range out {
				out[i] = NewTraceID()
			}
			ids[w] = out
		}(w)
	}
	wg.Wait()
	seen := make(map[TraceID]struct{}, workers*perWorker)
	for _, chunk := range ids {
		for _, id := range chunk {
			if id.IsZero() {
				t.Fatal("generated a zero trace ID")
			}
			if _, dup := seen[id]; dup {
				t.Fatalf("trace ID collision: %s", id)
			}
			seen[id] = struct{}{}
		}
	}
}
