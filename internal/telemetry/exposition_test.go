package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterVecCardinalityCap(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("cap_test_total", "cardinality cap", "who")
	for i := 0; i < MaxLabelCardinality+10; i++ {
		vec.With(fmt.Sprintf("value-%d", i)).Inc()
	}
	if got := vec.Overflowed(); got != 10 {
		t.Fatalf("Overflowed = %d, want 10", got)
	}
	// Updates to an already-materialised child keep landing there.
	vec.With("value-0").Inc()
	if got := vec.Overflowed(); got != 10 {
		t.Fatalf("existing child folded into overflow: Overflowed = %d", got)
	}
	// A repeat of a folded value folds again rather than materialising.
	vec.With(fmt.Sprintf("value-%d", MaxLabelCardinality+1)).Inc()
	if got := vec.Overflowed(); got != 11 {
		t.Fatalf("repeat overflow value did not fold: Overflowed = %d", got)
	}
	// The overflow child surfaces in the snapshot like any other.
	var overflow *MetricSnapshot
	children := 0
	for _, m := range r.Snapshot() {
		if m.Name != "cap_test_total" {
			continue
		}
		children++
		if m.LabelValue == OverflowLabel {
			c := m
			overflow = &c
		}
	}
	if children != MaxLabelCardinality+1 {
		t.Fatalf("snapshot has %d children, want %d materialised + 1 overflow",
			children, MaxLabelCardinality)
	}
	if overflow == nil || overflow.Value != 11 {
		t.Fatalf("overflow child missing or wrong: %+v", overflow)
	}
}

func TestHistogramVecCardinalityCap(t *testing.T) {
	r := NewRegistry()
	vec := r.HistogramVec("hcap_seconds", "cardinality cap", "route", []float64{1})
	for i := 0; i < MaxLabelCardinality+5; i++ {
		vec.With(fmt.Sprintf("route-%d", i)).Observe(0.5)
	}
	over := vec.With(OverflowLabel)
	if over.Count() != 5 {
		t.Fatalf("overflow histogram holds %d observations, want 5", over.Count())
	}
}

func TestObserveTracedStoresExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ex_seconds", "exemplars", []float64{1, 2})
	h.ObserveTraced(0.5, "aaaa")
	h.ObserveTraced(1.5, "bbbb")
	h.ObserveTraced(0.7, "cccc") // replaces aaaa in the first bucket
	h.ObserveTraced(9.0, "")     // no trace: counted, no exemplar
	snap := r.Snapshot()[0]
	if snap.Count != 4 {
		t.Fatalf("Count = %d, want 4", snap.Count)
	}
	if ex := snap.Buckets[0].Exemplar; ex == nil || ex.TraceID != "cccc" || ex.Value != 0.7 {
		t.Fatalf("bucket 0 exemplar = %+v, want latest trace cccc", ex)
	}
	if ex := snap.Buckets[1].Exemplar; ex == nil || ex.TraceID != "bbbb" {
		t.Fatalf("bucket 1 exemplar = %+v, want bbbb", ex)
	}
	if ex := snap.Buckets[2].Exemplar; ex != nil {
		t.Fatalf("untraced observation grew an exemplar: %+v", ex)
	}
}

// TestHistogramObserveSnapshotConsistency snapshots a histogram while
// writers observe into it (run under -race). Cumulative bucket counts
// are monotone by construction; the +Inf bucket may run ahead of the
// snapshot's Count (buckets increment first) but never behind, and once
// writers finish the two agree exactly.
func TestHistogramObserveSnapshotConsistency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("race_seconds", "race", []float64{0.25, 0.5, 0.75})
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	errc := make(chan error, 1)
	go func() {
		for {
			snap := h.snapshot()[0]
			prev := uint64(0)
			for _, b := range snap.Buckets {
				if b.Count < prev {
					errc <- fmt.Errorf("buckets not cumulative: %d after %d", b.Count, prev)
					return
				}
				prev = b.Count
			}
			if prev < snap.Count {
				errc <- fmt.Errorf("+Inf bucket %d behind Count %d", prev, snap.Count)
				return
			}
			if snap.Count == writers*perWriter {
				errc <- nil
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.ObserveTraced(float64(i%4)*0.25, "ffff")
			}
		}(w)
	}
	wg.Wait()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	final := h.snapshot()[0]
	if last := final.Buckets[len(final.Buckets)-1].Count; last != final.Count || final.Count != writers*perWriter {
		t.Fatalf("final +Inf %d / Count %d, want both %d", last, final.Count, writers*perWriter)
	}
}

func TestQuantile(t *testing.T) {
	// 100 observations: 50 in (0, 1], 30 in (1, 2], 20 in (2, +Inf].
	m := MetricSnapshot{
		Kind:  "histogram",
		Count: 100,
		Buckets: []Bucket{
			{UpperBound: 1, Count: 50},
			{UpperBound: 2, Count: 80},
			{UpperBound: math.Inf(1), Count: 100},
		},
	}
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	if got := m.Quantile(0.5); !approx(got, 1.0) {
		t.Fatalf("p50 = %g, want 1.0 (rank 50 at the first bucket edge)", got)
	}
	if got := m.Quantile(0.65); !approx(got, 1.5) {
		t.Fatalf("p65 = %g, want 1.5 (interpolated inside (1,2])", got)
	}
	// Ranks landing in +Inf clamp to the last finite bound.
	if got := m.Quantile(0.99); !approx(got, 2.0) {
		t.Fatalf("p99 = %g, want clamp to 2.0", got)
	}
	if got := m.Quantile(1.0); !approx(got, 2.0) {
		t.Fatalf("p100 = %g, want clamp to 2.0", got)
	}
	for name, bad := range map[string]MetricSnapshot{
		"no observations": {Kind: "histogram", Buckets: m.Buckets},
		"not a histogram": {Kind: "counter", Value: 3},
	} {
		if got := bad.Quantile(0.5); !math.IsNaN(got) {
			t.Fatalf("%s: Quantile = %g, want NaN", name, got)
		}
	}
	if got := m.Quantile(0); !math.IsNaN(got) {
		t.Fatalf("q=0: got %g, want NaN", got)
	}
}

// goldenRegistrySnapshot builds a snapshot exercising every instrument
// kind — a labeled histogram with an exemplar included — with the
// wall-clock exemplar timestamp pinned so golden text is deterministic.
func goldenRegistrySnapshot() []MetricSnapshot {
	r := NewRegistry()
	r.Counter("g_events_total", "events seen").Add(3)
	r.Gauge("g_depth", "queue depth").Set(2.5)
	cv := r.CounterVec("g_skips_total", "skips by cause", "cause")
	cv.With("parse").Add(2)
	cv.With("io").Inc()
	hv := r.HistogramVec("g_latency_seconds", "latency by route", "route", []float64{0.1, 1})
	hv.With("GET /x").ObserveTraced(0.05, "4bf92f3577b34da6a3ce929d0e0e4736")
	hv.With("GET /x").Observe(0.5)

	snap := r.Snapshot()
	fixed := time.UnixMilli(1700000000500).UTC()
	for i := range snap {
		for j, b := range snap[i].Buckets {
			if b.Exemplar != nil {
				ex := *b.Exemplar
				ex.Time = fixed
				snap[i].Buckets[j].Exemplar = &ex
			}
		}
	}
	return snap
}

// goldenBody is the shared family/sample portion of both exposition
// formats; exemplarTail is spliced onto the traced bucket's line in the
// OpenMetrics variant only.
const goldenBody = `# HELP g_depth queue depth
# TYPE g_depth gauge
g_depth 2.5
# HELP g_events_total events seen
# TYPE g_events_total counter
g_events_total 3
# HELP g_latency_seconds latency by route
# TYPE g_latency_seconds histogram
g_latency_seconds_bucket{route="GET /x",le="0.1"} 1%s
g_latency_seconds_bucket{route="GET /x",le="1"} 2
g_latency_seconds_bucket{route="GET /x",le="+Inf"} 2
g_latency_seconds_sum{route="GET /x"} 0.55
g_latency_seconds_count{route="GET /x"} 2
# HELP g_skips_total skips by cause
# TYPE g_skips_total counter
g_skips_total{cause="io"} 1
g_skips_total{cause="parse"} 2
`

const goldenExemplarTail = ` # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.05 1700000000.500`

// TestWriteTextGolden pins the classic Prometheus text exposition
// byte-for-byte. The classic format never carries exemplars — the
// text-format parser rejects a mid-line '#' after a sample value.
func TestWriteTextGolden(t *testing.T) {
	var sb strings.Builder
	if err := WriteText(&sb, goldenRegistrySnapshot()); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(goldenBody, "")
	if got := sb.String(); got != want {
		t.Fatalf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if strings.Contains(sb.String(), " # {") {
		t.Fatal("classic text format leaked an OpenMetrics exemplar")
	}
}

// TestWriteOpenMetricsGolden pins the OpenMetrics exposition: the same
// samples plus the exemplar on the traced bucket and the mandatory
// "# EOF" terminator.
func TestWriteOpenMetricsGolden(t *testing.T) {
	var sb strings.Builder
	if err := WriteOpenMetrics(&sb, goldenRegistrySnapshot()); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(goldenBody, goldenExemplarTail) + "# EOF\n"
	if got := sb.String(); got != want {
		t.Fatalf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteOpenMetricsExemplarSyntax checks the live (non-pinned)
// exemplar tail against the OpenMetrics grammar.
func TestWriteOpenMetricsExemplarSyntax(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("syn_seconds", "syntax", []float64{1})
	h.ObserveTraced(0.5, "deadbeefdeadbeefdeadbeefdeadbeef")
	var sb strings.Builder
	if err := WriteOpenMetrics(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`_bucket\{le="1"\} 1 # \{trace_id="deadbeefdeadbeefdeadbeefdeadbeef"\} 0\.5 \d+\.\d{3}\n`)
	if !re.MatchString(sb.String()) {
		t.Fatalf("exemplar tail does not match OpenMetrics syntax:\n%s", sb.String())
	}
}
