package telemetry

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Span times one pipeline stage. Spans aggregate by path: every
// StartSpan("train/smo") under the same parentage accumulates into one
// SpanSnapshot (count, total, min, max) rather than recording individual
// traces — the cheap shape that still answers "where does the pipeline
// spend effort". When the starting context carries a TraceContext, the
// span's completion is additionally recorded in the flight recorder
// stamped with the trace ID, so individual requests and retraining
// cycles stay reconstructible from the ring.
type Span struct {
	path  string
	trace string
	start time.Time
}

type spanCtxKey struct{}

// StartSpan opens a span named name. If the context already carries a
// span, the new span nests under it (path "parent/name"); the returned
// context carries the new span for further nesting. End records the
// duration. A nil *Span (telemetry disabled) is safe to End.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if disabled.Load() {
		return ctx, nil
	}
	if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok && parent != nil {
		name = parent.path + "/" + name
	}
	s := &Span{path: name, trace: TraceIDFrom(ctx), start: time.Now()}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// End records the span's duration into the global span table and, for
// traced spans, into the flight recorder.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	globalSpans.record(s.path, d)
	if s.trace != "" {
		RecordFlight(FlightEntry{Kind: "span", Name: s.path, Trace: s.trace, Dur: d})
	}
}

// spanStat accumulates one path's durations.
type spanStat struct {
	count    uint64
	total    time.Duration
	min, max time.Duration
}

// spanTable is the global path → aggregate map. Span ends are stage-level
// (a handful per pipeline run), so a plain mutex is plenty.
type spanTable struct {
	mu    sync.Mutex
	stats map[string]*spanStat
}

var globalSpans = &spanTable{stats: make(map[string]*spanStat)}

func (t *spanTable) record(path string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.stats[path]
	if !ok {
		st = &spanStat{min: d, max: d}
		t.stats[path] = st
	}
	st.count++
	st.total += d
	if d < st.min {
		st.min = d
	}
	if d > st.max {
		st.max = d
	}
}

// SpanSnapshot is the aggregate of one span path.
type SpanSnapshot struct {
	Path  string        `json:"path"`
	Count uint64        `json:"count"`
	Total time.Duration `json:"total_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	// TotalSeconds duplicates Total for human-friendly JSON consumers.
	TotalSeconds float64 `json:"total_seconds"`
}

// SpanReport returns the span table sorted by path, which places children
// directly after their parents.
func SpanReport() []SpanSnapshot {
	globalSpans.mu.Lock()
	out := make([]SpanSnapshot, 0, len(globalSpans.stats))
	for p, st := range globalSpans.stats {
		out = append(out, SpanSnapshot{
			Path:         p,
			Count:        st.count,
			Total:        st.total,
			Min:          st.min,
			Max:          st.max,
			TotalSeconds: st.total.Seconds(),
		})
	}
	globalSpans.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// ResetSpans clears the global span table (tests, run separation).
func ResetSpans() {
	globalSpans.mu.Lock()
	globalSpans.stats = make(map[string]*spanStat)
	globalSpans.mu.Unlock()
}
