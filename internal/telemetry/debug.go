package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"
)

// acceptsOpenMetrics reports whether an Accept header asks for the
// OpenMetrics text format. A media range with an explicit q=0 is a
// refusal, any other application/openmetrics-text range is a yes.
func acceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mediaType, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if !strings.EqualFold(strings.TrimSpace(mediaType), "application/openmetrics-text") {
			continue
		}
		for _, p := range strings.Split(params, ";") {
			k, v, _ := strings.Cut(strings.TrimSpace(p), "=")
			if strings.EqualFold(strings.TrimSpace(k), "q") {
				if q, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil && q == 0 {
					return false
				}
			}
		}
		return true
	}
	return false
}

// publishOnce guards the expvar publication (expvar panics on duplicate
// names).
var publishOnce sync.Once

// publishExpvar exposes the combined snapshot under the expvar name
// "leaps_telemetry" so stock expvar tooling sees it at /debug/vars.
func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("leaps_telemetry", expvar.Func(func() any { return Capture() }))
	})
}

// Handler returns the debug surface the CLIs serve behind -debug-addr:
//
//	/metrics               registry in Prometheus text form (?format=json
//	                       for JSON; Accept: application/openmetrics-text
//	                       for OpenMetrics with exemplars)
//	/spans                 span table as an indented tree (?format=json for JSON)
//	/debug/flightrecorder  flight-recorder ring as a JSON dump
//	/debug/vars            expvar, including the combined snapshot
//	/debug/pprof/...       net/http/pprof profiles
func Handler() http.Handler {
	mux := http.NewServeMux()
	Register(mux)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "leaps debug endpoints:")
		fmt.Fprintln(w, "  /metrics        (?format=json)")
		fmt.Fprintln(w, "  /spans          (?format=json)")
		fmt.Fprintln(w, "  /debug/flightrecorder")
		fmt.Fprintln(w, "  /debug/vars")
		fmt.Fprintln(w, "  /debug/pprof/")
	})
	return mux
}

// Register mounts the debug endpoints (/metrics, /spans,
// /debug/flightrecorder, /debug/vars, /debug/pprof/*) on an existing
// mux, so servers with their own API
// surface — leaps-serve — can expose the introspection endpoints on the
// same listener instead of a separate -debug-addr one.
func Register(mux *http.ServeMux) {
	publishExpvar()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		metrics := Default().Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(metrics)
			return
		}
		// Prometheus picks its parser from the response Content-Type, and
		// exemplars are OpenMetrics-only syntax — the classic text parser
		// errors on them. Emit them only to clients that negotiated the
		// OpenMetrics format via Accept.
		if acceptsOpenMetrics(r.Header.Get("Accept")) {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			_ = WriteOpenMetrics(w, metrics)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteText(w, metrics)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		spans := SpanReport()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(spans)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = WriteSpansText(w, spans)
	})
	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteFlightDump(w, "on-demand")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// DebugServer is a running debug HTTP listener.
type DebugServer struct {
	// Addr is the bound address (resolves ":0" to the chosen port).
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// Serve binds addr (e.g. "127.0.0.1:6060", or ":0" for an ephemeral
// port) and serves the debug Handler on it in a background goroutine.
func Serve(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: binding debug address %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Close stops the listener.
func (d *DebugServer) Close() error { return d.srv.Close() }
