package partition

import (
	"testing"

	"repro/internal/appsim"
	"repro/internal/trace"
)

func TestSplitValidation(t *testing.T) {
	if _, err := Split(nil); err == nil {
		t.Error("Split(nil) succeeded")
	}
	if _, err := Split(&trace.Log{App: "x"}); err == nil {
		t.Error("Split(log without modules) succeeded")
	}
}

func TestSplitCleanProcess(t *testing.T) {
	p, err := appsim.NewProcess(appsim.VimProfile(), nil, appsim.MethodNone)
	if err != nil {
		t.Fatal(err)
	}
	log, err := p.GenerateLog(appsim.GenConfig{Seed: 1, Events: 300, PID: 4})
	if err != nil {
		t.Fatal(err)
	}
	part, err := Split(log)
	if err != nil {
		t.Fatal(err)
	}
	if part.Len() != log.Len() {
		t.Fatalf("partitioned %d events, want %d", part.Len(), log.Len())
	}
	if part.App != "vim.exe" || part.PID != 4 {
		t.Errorf("identity = (%q,%d)", part.App, part.PID)
	}
	for i, pe := range part.Events {
		if pe.Seq != log.Events[i].Seq || pe.Type != log.Events[i].Type {
			t.Fatalf("event %d identity mismatch", i)
		}
		if len(pe.AppTrace) == 0 {
			t.Fatalf("event %d has empty app trace", i)
		}
		if len(pe.SysTrace) == 0 {
			t.Fatalf("event %d has empty system trace", i)
		}
		// App frames precede system frames, and the partition preserves
		// the total frame count.
		if got, want := len(pe.AppTrace)+len(pe.SysTrace), len(log.Events[i].Stack); got != want {
			t.Fatalf("event %d frame count = %d, want %d", i, got, want)
		}
		for _, fr := range pe.AppTrace {
			if fr.Module != "vim.exe" {
				t.Fatalf("event %d app frame in %q", i, fr.Module)
			}
		}
		for _, fr := range pe.SysTrace {
			if fr.Module == "vim.exe" || fr.Module == "" {
				t.Fatalf("event %d system frame = %v", i, fr)
			}
		}
	}
}

func TestSplitInjectedFramesAreApplication(t *testing.T) {
	payload := appsim.ReverseHTTPSProfile()
	p, err := appsim.NewProcess(appsim.PuttyProfile(), &payload, appsim.MethodOnlineInjection)
	if err != nil {
		t.Fatal(err)
	}
	log, err := p.GenerateLog(appsim.GenConfig{Seed: 2, Events: 500, PayloadFraction: 0.5, PID: 9})
	if err != nil {
		t.Fatal(err)
	}
	part, err := Split(log)
	if err != nil {
		t.Fatal(err)
	}
	var sawInjected bool
	for _, pe := range part.Events {
		for _, fr := range pe.AppTrace {
			if !fr.Resolved() {
				sawInjected = true
			}
		}
		for _, fr := range pe.SysTrace {
			if !fr.Resolved() {
				t.Fatalf("unresolved frame %v classified as system", fr)
			}
		}
	}
	if !sawInjected {
		t.Error("no unresolved (injected) frames found in app traces")
	}
}

func TestSplitKeepsStacklessEvents(t *testing.T) {
	mm := testModuleMap(t)
	log := &trace.Log{
		App:     "vim.exe",
		Modules: mm,
		Events: []trace.Event{
			{Seq: 0, Type: trace.EventImageLoad}, // no stack
			{Seq: 1, Type: trace.EventFileRead, Stack: trace.StackWalk{{Addr: 0x400100}}},
		},
	}
	log.Modules.ResolveStack(log.Events[1].Stack)
	part, err := Split(log)
	if err != nil {
		t.Fatal(err)
	}
	if part.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", part.Len())
	}
	if len(part.Events[0].AppTrace) != 0 || len(part.Events[0].SysTrace) != 0 {
		t.Error("stackless event gained frames")
	}
	if len(part.Events[1].AppTrace) != 1 {
		t.Error("app frame not partitioned to app trace")
	}
}

func TestLibAndFuncSets(t *testing.T) {
	e := Event{SysTrace: trace.StackWalk{
		{Addr: 1, Module: "kernel32.dll", Function: "ReadFile"},
		{Addr: 2, Module: "ntdll.dll", Function: "NtReadFile"},
		{Addr: 3, Module: "ntdll.dll", Function: "NtReadFile"}, // duplicate
		{Addr: 4}, // unresolved, skipped
	}}
	libs := e.LibSet()
	if len(libs) != 2 || !libs["kernel32.dll"] || !libs["ntdll.dll"] {
		t.Errorf("LibSet() = %v", libs)
	}
	funcs := e.FuncSet()
	if len(funcs) != 2 || !funcs["kernel32.dll!ReadFile"] || !funcs["ntdll.dll!NtReadFile"] {
		t.Errorf("FuncSet() = %v", funcs)
	}
}

func testModuleMap(t *testing.T) *trace.ModuleMap {
	t.Helper()
	app, err := trace.NewModule("vim.exe", trace.ModuleApp, 0x400000, 0x10000, []trace.Symbol{
		{Name: "main", Addr: 0x400100},
	})
	if err != nil {
		t.Fatal(err)
	}
	mm, err := trace.NewModuleMap("vim.exe", []*trace.Module{app})
	if err != nil {
		t.Fatal(err)
	}
	return mm
}
