// Package partition implements the paper's Stack Partition Module: it
// splits the stack walk trace of each system event into an application
// stack trace (frames within the application itself, including unresolved
// frames from injected code) and a system stack trace (frames in shared
// libraries and the OS kernel).
//
// Downstream, the application stack trace feeds control-flow-graph
// inference while the system stack trace supplies the features of the
// statistical learning model, because system-level behaviour is what best
// distinguishes benign from malicious functionality.
package partition

import (
	"errors"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Partition telemetry: event volume and stack-walk coverage — the
// "stackless" share is the part of the trace that can feed neither the
// CFG nor the feature extractor.
var (
	mSplitEvents    = telemetry.NewCounter("partition_events_total", "events partitioned into app/system stack traces")
	mSplitStackless = telemetry.NewCounter("partition_stackless_events_total", "partitioned events that carried no stack walk")
	mSplitAppFrames = telemetry.NewCounter("partition_app_frames_total", "frames routed to application stack traces")
	mSplitSysFrames = telemetry.NewCounter("partition_sys_frames_total", "frames routed to system stack traces")
)

// Event is one system event with its stack walk partitioned.
type Event struct {
	// Seq, Type, TID mirror the source event.
	Seq  int
	Type trace.EventType
	TID  int
	// AppTrace holds the frames executing application code: frames inside
	// the application's own image plus unresolved frames (code running
	// from private allocations, i.e. injected payloads). Ordered from the
	// outermost frame down.
	AppTrace trace.StackWalk
	// SysTrace holds the frames in shared libraries and kernel modules,
	// ordered from the outermost library frame down to the kernel leaf.
	SysTrace trace.StackWalk
}

// Log is a partitioned stack-event correlated log.
type Log struct {
	App    string
	PID    int
	Events []Event
}

// Len returns the number of partitioned events.
func (l *Log) Len() int { return len(l.Events) }

// Split partitions every event of the log. Events without a stack walk are
// kept with empty traces so event ordinals remain aligned with the source
// log.
func Split(log *trace.Log) (*Log, error) {
	return SplitInto(log, &Scratch{})
}

// Scratch is the reusable working memory of SplitInto: the partitioned
// event slice plus one frame arena per trace side. After a warm-up call
// its capacities have converged and further splits of similar logs
// allocate nothing.
//
// Ownership: the Log returned by SplitInto, its events and their
// app/system traces all alias the scratch; they are valid only until
// the next SplitInto on the same scratch. Callers that retain events
// past that point must deep-copy the traces (trace.StackWalk.Clone).
type Scratch struct {
	log    Log
	events []Event
	app    trace.StackWalk
	sys    trace.StackWalk
}

// SplitInto is Split backed by caller-owned scratch memory, for ingest
// loops that partition one log (often a single event) per iteration.
// Results are byte-identical to Split's; see Scratch for aliasing
// rules.
func SplitInto(log *trace.Log, s *Scratch) (*Log, error) {
	if log == nil {
		return nil, errors.New("partition: nil log")
	}
	if log.Modules == nil {
		return nil, errors.New("partition: log has no module map")
	}
	s.events = s.events[:0]
	s.app = s.app[:0]
	s.sys = s.sys[:0]
	var stackless, appFrames, sysFrames int
	for i := range log.Events {
		e := &log.Events[i]
		pe := Event{Seq: e.Seq, Type: e.Type, TID: e.TID}
		if len(e.Stack) == 0 {
			stackless++
		}
		appStart, sysStart := len(s.app), len(s.sys)
		for _, fr := range e.Stack {
			if isSystemFrame(log.Modules, fr) {
				s.sys = append(s.sys, fr)
			} else {
				s.app = append(s.app, fr)
			}
		}
		// Arena growth copies the in-flight frames to the new backing,
		// so index-based subslicing stays correct; earlier events keep
		// aliasing the old backing, which append never mutates.
		if len(s.app) > appStart {
			pe.AppTrace = s.app[appStart:len(s.app):len(s.app)]
		}
		if len(s.sys) > sysStart {
			pe.SysTrace = s.sys[sysStart:len(s.sys):len(s.sys)]
		}
		appFrames += len(pe.AppTrace)
		sysFrames += len(pe.SysTrace)
		s.events = append(s.events, pe)
	}
	mSplitEvents.Add(uint64(log.Len()))
	mSplitStackless.Add(uint64(stackless))
	mSplitAppFrames.Add(uint64(appFrames))
	mSplitSysFrames.Add(uint64(sysFrames))
	s.log = Log{App: log.App, PID: log.PID, Events: s.events}
	return &s.log, nil
}

// isSystemFrame reports whether a frame belongs to the system stack trace:
// it resolved into a shared library or kernel module. Frames in the
// application image and unresolved frames (injected code) are application
// frames.
func isSystemFrame(mm *trace.ModuleMap, fr trace.Frame) bool {
	m := mm.Locate(fr.Addr)
	if m == nil {
		return false
	}
	return m.Kind == trace.ModuleSharedLib || m.Kind == trace.ModuleKernel
}

// LibSet returns the set of distinct library/kernel module names in the
// event's system stack trace.
func (e *Event) LibSet() map[string]bool {
	out := make(map[string]bool, len(e.SysTrace))
	for _, fr := range e.SysTrace {
		if fr.Module != "" {
			out[fr.Module] = true
		}
	}
	return out
}

// FuncSet returns the set of distinct module-qualified function names in
// the event's system stack trace.
func (e *Event) FuncSet() map[string]bool {
	out := make(map[string]bool, len(e.SysTrace))
	for _, fr := range e.SysTrace {
		if fr.Function != "" {
			out[fr.Module+"!"+fr.Function] = true
		}
	}
	return out
}
