// Equivalence and allocation tests for the scratch split path.
package partition

import (
	"testing"

	"repro/internal/appsim"
	"repro/internal/trace"
)

func generatedLog(t *testing.T, seed int64, events int) *trace.Log {
	t.Helper()
	payload := appsim.ReverseTCPProfile()
	p, err := appsim.NewProcess(appsim.VimProfile(), &payload, appsim.MethodOfflineInfection)
	if err != nil {
		t.Fatal(err)
	}
	log, err := p.GenerateLog(appsim.GenConfig{Seed: seed, Events: events, PayloadFraction: 0.3, PID: 4})
	if err != nil {
		t.Fatal(err)
	}
	return log
}

// TestSplitIntoMatchesSplit requires the scratch split to produce the
// same partitioned events as Split, across repeated reuses of one
// scratch over different logs.
func TestSplitIntoMatchesSplit(t *testing.T) {
	var s Scratch
	for _, seed := range []int64{1, 2, 3} {
		log := generatedLog(t, seed, 400)
		want, err := Split(log)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SplitInto(log, &s)
		if err != nil {
			t.Fatal(err)
		}
		if got.App != want.App || got.PID != want.PID || len(got.Events) != len(want.Events) {
			t.Fatalf("seed %d: got (%q, %d, %d events), want (%q, %d, %d events)",
				seed, got.App, got.PID, len(got.Events), want.App, want.PID, len(want.Events))
		}
		for i := range want.Events {
			w, g := &want.Events[i], &got.Events[i]
			if w.Seq != g.Seq || w.Type != g.Type || w.TID != g.TID ||
				len(w.AppTrace) != len(g.AppTrace) || len(w.SysTrace) != len(g.SysTrace) {
				t.Fatalf("seed %d event %d: want %+v, got %+v", seed, i, w, g)
			}
			for j := range w.AppTrace {
				if w.AppTrace[j] != g.AppTrace[j] {
					t.Fatalf("seed %d event %d app frame %d differs", seed, i, j)
				}
			}
			for j := range w.SysTrace {
				if w.SysTrace[j] != g.SysTrace[j] {
					t.Fatalf("seed %d event %d sys frame %d differs", seed, i, j)
				}
			}
		}
	}
}

// TestSplitIntoSteadyStateAllocs requires a warm scratch split to be
// allocation-free.
func TestSplitIntoSteadyStateAllocs(t *testing.T) {
	log := generatedLog(t, 7, 400)
	var s Scratch
	if _, err := SplitInto(log, &s); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(50, func() {
		if _, err := SplitInto(log, &s); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("warm SplitInto allocates %.2f per call, want 0", avg)
	}
}
