package trace

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ModuleKind classifies a loaded module for stack partitioning: frames in
// the application's own image form the application stack trace; frames in
// shared libraries and the kernel form the system stack trace.
type ModuleKind int

// Module kinds.
const (
	ModuleApp ModuleKind = iota + 1
	ModuleSharedLib
	ModuleKernel
)

var moduleKindNames = map[ModuleKind]string{
	ModuleApp:       "app",
	ModuleSharedLib: "sharedlib",
	ModuleKernel:    "kernel",
}

// String returns the canonical kind name.
func (k ModuleKind) String() string {
	if n, ok := moduleKindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("ModuleKind(%d)", int(k))
}

// Symbol is a named function within a module, located at an absolute
// address. Symbols partition the module's address range: a frame address
// resolves to the symbol with the greatest Addr not exceeding it.
type Symbol struct {
	Name string
	Addr uint64
}

// Module is a loaded image: the application binary, a shared library, or a
// kernel component. Its symbols are kept sorted by address.
type Module struct {
	Name    string
	Kind    ModuleKind
	Base    uint64
	Size    uint64
	symbols []Symbol
}

// NewModule constructs a module covering [base, base+size) with the given
// symbols. Symbols outside the range are rejected.
func NewModule(name string, kind ModuleKind, base, size uint64, symbols []Symbol) (*Module, error) {
	if name == "" {
		return nil, errors.New("trace: module name must not be empty")
	}
	if size == 0 {
		return nil, fmt.Errorf("trace: module %q has zero size", name)
	}
	m := &Module{Name: name, Kind: kind, Base: base, Size: size}
	m.symbols = make([]Symbol, len(symbols))
	copy(m.symbols, symbols)
	sort.Slice(m.symbols, func(i, j int) bool { return m.symbols[i].Addr < m.symbols[j].Addr })
	for _, s := range m.symbols {
		if s.Addr < base || s.Addr >= base+size {
			return nil, fmt.Errorf("trace: symbol %s@0x%x outside module %q [0x%x,0x%x)",
				s.Name, s.Addr, name, base, base+size)
		}
	}
	return m, nil
}

// End returns the first address past the module.
func (m *Module) End() uint64 { return m.Base + m.Size }

// Contains reports whether addr falls inside the module's range.
func (m *Module) Contains(addr uint64) bool { return addr >= m.Base && addr < m.End() }

// Symbols returns a copy of the module's symbols in address order.
func (m *Module) Symbols() []Symbol {
	out := make([]Symbol, len(m.symbols))
	copy(out, m.symbols)
	return out
}

// FuncAt resolves addr to the enclosing function name. The second return is
// false when addr precedes the first symbol or lies outside the module.
func (m *Module) FuncAt(addr uint64) (string, bool) {
	if !m.Contains(addr) || len(m.symbols) == 0 {
		return "", false
	}
	// First symbol with Addr > addr, then step back one.
	i := sort.Search(len(m.symbols), func(i int) bool { return m.symbols[i].Addr > addr })
	if i == 0 {
		return "", false
	}
	return m.symbols[i-1].Name, true
}

// ModuleMap indexes the modules loaded in a process for address resolution
// and stack partitioning. It is immutable once built.
type ModuleMap struct {
	appName string
	modules []*Module // sorted by base address
	byName  map[string]*Module
}

// NewModuleMap builds a map over the given modules. Exactly the modules
// with Kind == ModuleApp and name == appName constitute the application
// image. Overlapping modules are rejected.
func NewModuleMap(appName string, modules []*Module) (*ModuleMap, error) {
	if appName == "" {
		return nil, errors.New("trace: application name must not be empty")
	}
	mm := &ModuleMap{
		appName: appName,
		modules: make([]*Module, len(modules)),
		byName:  make(map[string]*Module, len(modules)),
	}
	copy(mm.modules, modules)
	sort.Slice(mm.modules, func(i, j int) bool { return mm.modules[i].Base < mm.modules[j].Base })
	for i, m := range mm.modules {
		if i > 0 && m.Base < mm.modules[i-1].End() {
			return nil, fmt.Errorf("trace: modules %q and %q overlap",
				mm.modules[i-1].Name, m.Name)
		}
		if _, dup := mm.byName[m.Name]; dup {
			return nil, fmt.Errorf("trace: duplicate module name %q", m.Name)
		}
		mm.byName[m.Name] = m
	}
	if _, ok := mm.byName[appName]; !ok {
		return nil, fmt.Errorf("trace: application module %q not in module list", appName)
	}
	return mm, nil
}

// AppName returns the name of the application's main image.
func (mm *ModuleMap) AppName() string { return mm.appName }

// AppModule returns the application's main image module.
func (mm *ModuleMap) AppModule() *Module { return mm.byName[mm.appName] }

// Module returns the named module, or nil when absent.
func (mm *ModuleMap) Module(name string) *Module { return mm.byName[name] }

// Modules returns the modules in base-address order. The returned slice is
// a copy; the modules themselves are shared and must not be mutated.
func (mm *ModuleMap) Modules() []*Module {
	out := make([]*Module, len(mm.modules))
	copy(out, mm.modules)
	return out
}

// Locate returns the module containing addr, or nil when the address falls
// outside every loaded module (e.g. injected code in private allocations).
func (mm *ModuleMap) Locate(addr uint64) *Module {
	i := sort.Search(len(mm.modules), func(i int) bool { return mm.modules[i].End() > addr })
	if i == len(mm.modules) || !mm.modules[i].Contains(addr) {
		return nil
	}
	return mm.modules[i]
}

// Resolve fills in the Module and Function fields of a frame from its
// address. Unresolvable frames are returned unchanged apart from clearing
// any stale resolution.
func (mm *ModuleMap) Resolve(f Frame) Frame {
	f.Module, f.Function = "", ""
	m := mm.Locate(f.Addr)
	if m == nil {
		return f
	}
	f.Module = m.Name
	if fn, ok := m.FuncAt(f.Addr); ok {
		f.Function = fn
	} else {
		f.Function = fmt.Sprintf("sub_%x", f.Addr-m.Base)
	}
	return f
}

// ResolveStack resolves every frame of a stack walk in place and returns it.
func (mm *ModuleMap) ResolveStack(s StackWalk) StackWalk {
	for i := range s {
		s[i] = mm.Resolve(s[i])
	}
	return s
}

// IsAppFrame reports whether the frame address lies in the application's
// own image.
func (mm *ModuleMap) IsAppFrame(addr uint64) bool {
	m := mm.Locate(addr)
	return m != nil && m.Kind == ModuleApp
}

// String summarises the map for diagnostics.
func (mm *ModuleMap) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ModuleMap(app=%s)", mm.appName)
	for _, m := range mm.modules {
		fmt.Fprintf(&b, "\n  %-24s %-9s [0x%x, 0x%x) %d syms",
			m.Name, m.Kind, m.Base, m.End(), len(m.symbols))
	}
	return b.String()
}
