package trace

import (
	"strings"
	"testing"
	"time"
)

func analyzedLog(t *testing.T) *Log {
	t.Helper()
	mm := testModuleMap(t)
	base := time.Date(2015, 6, 22, 9, 0, 0, 0, time.UTC)
	mk := func(seq int, typ EventType, tid int, offset time.Duration, addrs ...uint64) Event {
		e := Event{Seq: seq, Type: typ, TID: tid, Time: base.Add(offset)}
		for _, a := range addrs {
			e.Stack = append(e.Stack, mm.Resolve(Frame{Addr: a}))
		}
		return e
	}
	return &Log{
		App:     "vim.exe",
		PID:     7,
		Modules: mm,
		Events: []Event{
			mk(0, EventFileRead, 1, 0, 0x400100, 0x7ff01000),
			mk(1, EventFileWrite, 1, time.Millisecond, 0x400100, 0x7ff01000, 0xfffff80000001000),
			mk(2, EventNetSend, 9, 2*time.Millisecond, 0xdeadbeef), // unresolved
			mk(3, EventFileRead, 1, 3*time.Millisecond, 0x401000),
		},
	}
}

func TestFilterType(t *testing.T) {
	l := analyzedLog(t)
	got := l.FilterType(EventFileRead)
	if got.Len() != 2 {
		t.Fatalf("FilterType kept %d events, want 2", got.Len())
	}
	for i, e := range got.Events {
		if e.Type != EventFileRead {
			t.Errorf("event %d type = %v", i, e.Type)
		}
		if e.Seq != i {
			t.Errorf("event %d Seq = %d, not renumbered", i, e.Seq)
		}
	}
	// Deep copy: mutating the filtered log leaves the original intact.
	got.Events[0].Stack[0].Addr = 1
	if l.Events[0].Stack[0].Addr == 1 {
		t.Error("FilterType shares stacks with the source")
	}
}

func TestFilterTime(t *testing.T) {
	l := analyzedLog(t)
	base := l.Events[0].Time
	got := l.FilterTime(base.Add(time.Millisecond), base.Add(3*time.Millisecond))
	if got.Len() != 2 {
		t.Fatalf("FilterTime kept %d events, want 2", got.Len())
	}
	if got.Events[0].Type != EventFileWrite || got.Events[1].Type != EventNetSend {
		t.Errorf("wrong events kept: %v, %v", got.Events[0].Type, got.Events[1].Type)
	}
	// Open bounds keep everything.
	if all := l.FilterTime(time.Time{}, time.Time{}); all.Len() != l.Len() {
		t.Errorf("open bounds kept %d, want %d", all.Len(), l.Len())
	}
}

func TestFilterThread(t *testing.T) {
	l := analyzedLog(t)
	got := l.FilterThread(9)
	if got.Len() != 1 || got.Events[0].Type != EventNetSend {
		t.Fatalf("FilterThread(9) = %d events", got.Len())
	}
}

func TestStats(t *testing.T) {
	l := analyzedLog(t)
	s := l.Stats()
	if s.Events != 4 || s.Threads != 2 {
		t.Errorf("events/threads = %d/%d", s.Events, s.Threads)
	}
	if s.ByType[EventFileRead] != 2 || s.ByType[EventNetSend] != 1 {
		t.Errorf("ByType = %v", s.ByType)
	}
	if s.MaxStack != 3 {
		t.Errorf("MaxStack = %d", s.MaxStack)
	}
	if s.UnresolvedFrames != 1 || s.TotalFrames != 7 {
		t.Errorf("frames = %d unresolved of %d", s.UnresolvedFrames, s.TotalFrames)
	}
	if s.Span() != 3*time.Millisecond {
		t.Errorf("Span = %v", s.Span())
	}
	str := s.String()
	if !strings.Contains(str, "FileRead") || !strings.Contains(str, "4 events") {
		t.Errorf("String() = %q", str)
	}
	if empty := (&Log{}).Stats(); empty.Span() != 0 || empty.AvgStack != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestMergeLogs(t *testing.T) {
	l := analyzedLog(t)
	a := l.FilterTime(time.Time{}, l.Events[2].Time) // first two events
	b := l.FilterTime(l.Events[2].Time, time.Time{}) // last two events
	merged, err := MergeLogs(b, a)                   // out of order on purpose
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != l.Len() {
		t.Fatalf("merged %d events, want %d", merged.Len(), l.Len())
	}
	for i := range merged.Events {
		if merged.Events[i].Seq != i {
			t.Errorf("event %d not renumbered", i)
		}
		if merged.Events[i].Type != l.Events[i].Type {
			t.Errorf("event %d out of order: %v", i, merged.Events[i].Type)
		}
	}
	if _, err := MergeLogs(); err == nil {
		t.Error("MergeLogs() with no logs succeeded")
	}
	other := &Log{App: "chrome.exe", PID: 9}
	if _, err := MergeLogs(l, other); err == nil {
		t.Error("merging different processes succeeded")
	}
}
