package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Log analysis and slicing utilities for tooling built on the library.

// FilterType returns a new log containing only events of the given types,
// renumbered sequentially. The module map is shared.
func (l *Log) FilterType(types ...EventType) *Log {
	want := make(map[EventType]bool, len(types))
	for _, t := range types {
		want[t] = true
	}
	out := &Log{App: l.App, PID: l.PID, Modules: l.Modules}
	for _, e := range l.Events {
		if want[e.Type] {
			c := e.Clone()
			c.Seq = len(out.Events)
			out.Events = append(out.Events, c)
		}
	}
	return out
}

// FilterTime returns a new log with the events in [from, to), renumbered
// sequentially. Zero bounds are open.
func (l *Log) FilterTime(from, to time.Time) *Log {
	out := &Log{App: l.App, PID: l.PID, Modules: l.Modules}
	for _, e := range l.Events {
		if !from.IsZero() && e.Time.Before(from) {
			continue
		}
		if !to.IsZero() && !e.Time.Before(to) {
			continue
		}
		c := e.Clone()
		c.Seq = len(out.Events)
		out.Events = append(out.Events, c)
	}
	return out
}

// FilterThread returns a new log with the events of one thread,
// renumbered sequentially.
func (l *Log) FilterThread(tid int) *Log {
	out := &Log{App: l.App, PID: l.PID, Modules: l.Modules}
	for _, e := range l.Events {
		if e.TID == tid {
			c := e.Clone()
			c.Seq = len(out.Events)
			out.Events = append(out.Events, c)
		}
	}
	return out
}

// Stats summarises a log for diagnostics.
type Stats struct {
	Events   int
	Threads  int
	First    time.Time
	Last     time.Time
	ByType   map[EventType]int
	AvgStack float64
	MaxStack int
	// UnresolvedFrames counts frames outside every loaded module
	// (injected code).
	UnresolvedFrames int
	TotalFrames      int
}

// Stats computes summary statistics over the log.
func (l *Log) Stats() Stats {
	s := Stats{Events: l.Len(), ByType: make(map[EventType]int)}
	threads := make(map[int]bool)
	var frames int
	for i, e := range l.Events {
		s.ByType[e.Type]++
		threads[e.TID] = true
		if i == 0 || e.Time.Before(s.First) {
			s.First = e.Time
		}
		if e.Time.After(s.Last) {
			s.Last = e.Time
		}
		frames += len(e.Stack)
		if len(e.Stack) > s.MaxStack {
			s.MaxStack = len(e.Stack)
		}
		for _, fr := range e.Stack {
			if !fr.Resolved() {
				s.UnresolvedFrames++
			}
		}
	}
	s.Threads = len(threads)
	s.TotalFrames = frames
	if l.Len() > 0 {
		s.AvgStack = float64(frames) / float64(l.Len())
	}
	return s
}

// Span returns the wall-clock duration the log covers.
func (s Stats) Span() time.Duration {
	if s.First.IsZero() || s.Last.IsZero() {
		return 0
	}
	return s.Last.Sub(s.First)
}

// String renders the statistics for diagnostics.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d events across %d threads over %v\n", s.Events, s.Threads, s.Span().Round(time.Millisecond))
	fmt.Fprintf(&b, "stack depth: avg %.1f, max %d; unresolved frames: %d/%d\n",
		s.AvgStack, s.MaxStack, s.UnresolvedFrames, s.TotalFrames)
	types := make([]EventType, 0, len(s.ByType))
	for t := range s.ByType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return s.ByType[types[i]] > s.ByType[types[j]] })
	for _, t := range types {
		fmt.Fprintf(&b, "  %-16s %d\n", t, s.ByType[t])
	}
	return b.String()
}

// MergeLogs combines several logs of the same process (e.g. slices
// captured at different times) into one, ordered by timestamp and
// renumbered. All logs must agree on App and PID; the first log's module
// map is used.
func MergeLogs(logs ...*Log) (*Log, error) {
	if len(logs) == 0 {
		return nil, fmt.Errorf("trace: no logs to merge")
	}
	out := &Log{App: logs[0].App, PID: logs[0].PID, Modules: logs[0].Modules}
	for i, l := range logs {
		if l.App != out.App || l.PID != out.PID {
			return nil, fmt.Errorf("trace: log %d is for (%q,%d), want (%q,%d)",
				i, l.App, l.PID, out.App, out.PID)
		}
		for _, e := range l.Events {
			out.Events = append(out.Events, e.Clone())
		}
	}
	sort.SliceStable(out.Events, func(i, j int) bool {
		return out.Events[i].Time.Before(out.Events[j].Time)
	})
	for i := range out.Events {
		out.Events[i].Seq = i
	}
	return out, nil
}
