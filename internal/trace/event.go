// Package trace defines the core datatypes shared by every LEAPS module:
// system events, stack-walk frames, module maps and event logs.
//
// The shapes here mirror what a stack-walking system event logger (the
// paper uses Event Tracing for Windows) emits after the raw-log parsing
// stage: a stream of typed system events, each annotated with the stack
// walk that led to it, where every frame carries a return address and, once
// resolved against the module map, a module and function name.
package trace

import (
	"fmt"
	"time"
)

// EventType identifies the kind of system event captured by the logging
// engine. The set follows the event classes ETW exposes for stack walking
// (system calls, process/thread lifecycle, image loads, file operations,
// registry tracing, network operations).
type EventType int

// Recognised system event types.
const (
	EventUnknown EventType = iota
	EventSysCallEnter
	EventSysCallExit
	EventProcessCreate
	EventProcessExit
	EventThreadCreate
	EventThreadExit
	EventImageLoad
	EventImageUnload
	EventFileCreate
	EventFileRead
	EventFileWrite
	EventFileDelete
	EventRegistryRead
	EventRegistryWrite
	EventNetConnect
	EventNetSend
	EventNetRecv
	EventNetDisconnect
	EventMemAlloc
	EventMemFree
	EventUIMessage

	// eventTypeCount is the number of event types including EventUnknown.
	eventTypeCount
)

var eventTypeNames = [...]string{
	EventUnknown:       "Unknown",
	EventSysCallEnter:  "SysCallEnter",
	EventSysCallExit:   "SysCallExit",
	EventProcessCreate: "ProcessCreate",
	EventProcessExit:   "ProcessExit",
	EventThreadCreate:  "ThreadCreate",
	EventThreadExit:    "ThreadExit",
	EventImageLoad:     "ImageLoad",
	EventImageUnload:   "ImageUnload",
	EventFileCreate:    "FileCreate",
	EventFileRead:      "FileRead",
	EventFileWrite:     "FileWrite",
	EventFileDelete:    "FileDelete",
	EventRegistryRead:  "RegistryRead",
	EventRegistryWrite: "RegistryWrite",
	EventNetConnect:    "NetConnect",
	EventNetSend:       "NetSend",
	EventNetRecv:       "NetRecv",
	EventNetDisconnect: "NetDisconnect",
	EventMemAlloc:      "MemAlloc",
	EventMemFree:       "MemFree",
	EventUIMessage:     "UIMessage",
}

// NumEventTypes reports how many distinct event types exist, including
// EventUnknown. Feature encoders use it to size one-hot or integer spaces.
func NumEventTypes() int { return int(eventTypeCount) }

// String returns the canonical name of the event type.
func (t EventType) String() string {
	if t < 0 || int(t) >= len(eventTypeNames) {
		return fmt.Sprintf("EventType(%d)", int(t))
	}
	return eventTypeNames[t]
}

// Valid reports whether t is a known event type other than EventUnknown.
func (t EventType) Valid() bool {
	return t > EventUnknown && int(t) < len(eventTypeNames)
}

// ParseEventType maps a canonical name back to its EventType. It returns
// EventUnknown and false when the name is not recognised.
func ParseEventType(name string) (EventType, bool) {
	for i, n := range eventTypeNames {
		if n == name && EventType(i) != EventUnknown {
			return EventType(i), true
		}
	}
	return EventUnknown, false
}

// Frame is a single entry of a stack walk. Addr is the instruction address
// recorded by the logger; Module and Function are filled in when the frame
// is resolved against a ModuleMap and are empty for unresolved frames
// (e.g. code running from dynamically allocated memory).
type Frame struct {
	Addr     uint64
	Module   string
	Function string
}

// Resolved reports whether the frame was attributed to a known module.
func (f Frame) Resolved() bool { return f.Module != "" }

// String renders the frame as "module!function@0xADDR", matching the
// notation used in stack-walk dumps.
func (f Frame) String() string {
	if !f.Resolved() {
		return fmt.Sprintf("?!?@0x%x", f.Addr)
	}
	return fmt.Sprintf("%s!%s@0x%x", f.Module, f.Function, f.Addr)
}

// StackWalk is the call stack captured when an event fired, ordered from
// the outermost application frame (index 0) to the innermost system frame
// (last index). This is the orientation used throughout the paper's
// figures: application code at the top, shared libraries and kernel at the
// bottom.
type StackWalk []Frame

// Clone returns a deep copy of the stack walk. Callers that retain stacks
// across mutations of the source log should clone at the boundary.
func (s StackWalk) Clone() StackWalk {
	if s == nil {
		return nil
	}
	out := make(StackWalk, len(s))
	copy(out, s)
	return out
}

// Addrs returns the frame addresses in stack order.
func (s StackWalk) Addrs() []uint64 {
	out := make([]uint64, len(s))
	for i, f := range s {
		out[i] = f.Addr
	}
	return out
}

// Event is one itemised system event from the stack-event correlated log:
// a typed event attached to the stack walk that produced it.
type Event struct {
	// Seq is the event's ordinal in its log, assigned by the parser.
	Seq int
	// Type is the system event type.
	Type EventType
	// Time is the capture timestamp.
	Time time.Time
	// PID and TID identify the emitting process and thread.
	PID int
	TID int
	// Stack is the correlated stack walk (application frames first).
	Stack StackWalk
}

// Clone returns a deep copy of the event.
func (e Event) Clone() Event {
	out := e
	out.Stack = e.Stack.Clone()
	return out
}

// Log is a stack-event correlated log for a single process: the parsed,
// per-application slice of the raw system event log.
type Log struct {
	// App is the name of the application of interest (its main image).
	App string
	// PID is the process the log was sliced for.
	PID int
	// Modules maps address ranges to the modules loaded in the process.
	Modules *ModuleMap
	// Events are the itemised events in capture order.
	Events []Event
}

// Len returns the number of events in the log.
func (l *Log) Len() int { return len(l.Events) }

// Clone returns a deep copy of the log. The module map is shared, as it is
// immutable after construction.
func (l *Log) Clone() *Log {
	out := &Log{App: l.App, PID: l.PID, Modules: l.Modules}
	out.Events = make([]Event, len(l.Events))
	for i, e := range l.Events {
		out.Events[i] = e.Clone()
	}
	return out
}

// CountTypes tallies events by type.
func (l *Log) CountTypes() map[EventType]int {
	out := make(map[EventType]int)
	for _, e := range l.Events {
		out[e.Type]++
	}
	return out
}
