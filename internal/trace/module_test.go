package trace

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustModule(t *testing.T, name string, kind ModuleKind, base, size uint64, syms []Symbol) *Module {
	t.Helper()
	m, err := NewModule(name, kind, base, size, syms)
	if err != nil {
		t.Fatalf("NewModule(%q): %v", name, err)
	}
	return m
}

func testModuleMap(t *testing.T) *ModuleMap {
	t.Helper()
	app := mustModule(t, "vim.exe", ModuleApp, 0x400000, 0x10000, []Symbol{
		{Name: "main", Addr: 0x400100},
		{Name: "edit_loop", Addr: 0x401000},
		{Name: "write_file", Addr: 0x402000},
	})
	lib := mustModule(t, "kernel32.dll", ModuleSharedLib, 0x7ff00000, 0x20000, []Symbol{
		{Name: "CreateFileW", Addr: 0x7ff00400},
		{Name: "WriteFile", Addr: 0x7ff01000},
	})
	krnl := mustModule(t, "ntoskrnl.exe", ModuleKernel, 0xfffff80000000000, 0x100000, []Symbol{
		{Name: "NtWriteFile", Addr: 0xfffff80000001000},
	})
	mm, err := NewModuleMap("vim.exe", []*Module{app, lib, krnl})
	if err != nil {
		t.Fatalf("NewModuleMap: %v", err)
	}
	return mm
}

func TestNewModuleValidation(t *testing.T) {
	tests := []struct {
		name    string
		mkName  string
		base    uint64
		size    uint64
		syms    []Symbol
		wantErr bool
	}{
		{"valid", "a.dll", 0x1000, 0x100, []Symbol{{Name: "f", Addr: 0x1010}}, false},
		{"empty name", "", 0x1000, 0x100, nil, true},
		{"zero size", "a.dll", 0x1000, 0, nil, true},
		{"symbol below base", "a.dll", 0x1000, 0x100, []Symbol{{Name: "f", Addr: 0xfff}}, true},
		{"symbol past end", "a.dll", 0x1000, 0x100, []Symbol{{Name: "f", Addr: 0x1100}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewModule(tt.mkName, ModuleSharedLib, tt.base, tt.size, tt.syms)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewModule err = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestModuleFuncAt(t *testing.T) {
	m := mustModule(t, "x.exe", ModuleApp, 0x1000, 0x1000, []Symbol{
		{Name: "a", Addr: 0x1100},
		{Name: "b", Addr: 0x1200},
	})
	tests := []struct {
		addr   uint64
		want   string
		wantOK bool
	}{
		{0x1100, "a", true},
		{0x11ff, "a", true},
		{0x1200, "b", true},
		{0x1fff, "b", true},
		{0x1050, "", false}, // before first symbol
		{0x2000, "", false}, // outside module
	}
	for _, tt := range tests {
		got, ok := m.FuncAt(tt.addr)
		if got != tt.want || ok != tt.wantOK {
			t.Errorf("FuncAt(0x%x) = (%q, %v), want (%q, %v)", tt.addr, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestModuleMapRejectsOverlap(t *testing.T) {
	a := mustModule(t, "a.exe", ModuleApp, 0x1000, 0x1000, nil)
	b := mustModule(t, "b.dll", ModuleSharedLib, 0x1800, 0x1000, nil)
	if _, err := NewModuleMap("a.exe", []*Module{a, b}); err == nil {
		t.Error("NewModuleMap accepted overlapping modules")
	}
}

func TestModuleMapRejectsDuplicateName(t *testing.T) {
	a := mustModule(t, "a.exe", ModuleApp, 0x1000, 0x100, nil)
	b := mustModule(t, "a.exe", ModuleSharedLib, 0x3000, 0x100, nil)
	if _, err := NewModuleMap("a.exe", []*Module{a, b}); err == nil {
		t.Error("NewModuleMap accepted duplicate module names")
	}
}

func TestModuleMapRequiresAppModule(t *testing.T) {
	b := mustModule(t, "b.dll", ModuleSharedLib, 0x3000, 0x100, nil)
	if _, err := NewModuleMap("a.exe", []*Module{b}); err == nil {
		t.Error("NewModuleMap accepted a map without the app module")
	}
}

func TestModuleMapLocate(t *testing.T) {
	mm := testModuleMap(t)
	tests := []struct {
		addr uint64
		want string // module name, "" for none
	}{
		{0x400100, "vim.exe"},
		{0x40ffff, "vim.exe"},
		{0x410000, ""},
		{0x7ff00400, "kernel32.dll"},
		{0xfffff80000001234, "ntoskrnl.exe"},
		{0x10, ""},
	}
	for _, tt := range tests {
		m := mm.Locate(tt.addr)
		got := ""
		if m != nil {
			got = m.Name
		}
		if got != tt.want {
			t.Errorf("Locate(0x%x) = %q, want %q", tt.addr, got, tt.want)
		}
	}
}

func TestModuleMapResolve(t *testing.T) {
	mm := testModuleMap(t)
	f := mm.Resolve(Frame{Addr: 0x401234})
	if f.Module != "vim.exe" || f.Function != "edit_loop" {
		t.Errorf("Resolve(0x401234) = %v, want vim.exe!edit_loop", f)
	}
	// Address inside the app image but before the first symbol gets a
	// synthetic sub_ name.
	f = mm.Resolve(Frame{Addr: 0x400010})
	if f.Module != "vim.exe" || !strings.HasPrefix(f.Function, "sub_") {
		t.Errorf("Resolve(0x400010) = %v, want vim.exe!sub_*", f)
	}
	// Unmapped address clears stale resolution.
	f = mm.Resolve(Frame{Addr: 0xdeadbeef, Module: "stale", Function: "stale"})
	if f.Resolved() {
		t.Errorf("Resolve(unmapped) = %v, want unresolved", f)
	}
}

func TestModuleMapResolveStack(t *testing.T) {
	mm := testModuleMap(t)
	s := StackWalk{{Addr: 0x400100}, {Addr: 0x7ff01008}, {Addr: 0xfffff80000001000}}
	mm.ResolveStack(s)
	wantMods := []string{"vim.exe", "kernel32.dll", "ntoskrnl.exe"}
	for i, w := range wantMods {
		if s[i].Module != w {
			t.Errorf("frame %d module = %q, want %q", i, s[i].Module, w)
		}
	}
}

func TestModuleMapIsAppFrame(t *testing.T) {
	mm := testModuleMap(t)
	if !mm.IsAppFrame(0x400100) {
		t.Error("IsAppFrame(app addr) = false")
	}
	if mm.IsAppFrame(0x7ff00400) {
		t.Error("IsAppFrame(lib addr) = true")
	}
	if mm.IsAppFrame(0xdeadbeef) {
		t.Error("IsAppFrame(unmapped addr) = true")
	}
}

func TestModuleMapAccessors(t *testing.T) {
	mm := testModuleMap(t)
	if mm.AppName() != "vim.exe" {
		t.Errorf("AppName() = %q", mm.AppName())
	}
	if mm.AppModule() == nil || mm.AppModule().Name != "vim.exe" {
		t.Error("AppModule() did not return the app image")
	}
	if mm.Module("kernel32.dll") == nil {
		t.Error("Module(kernel32.dll) = nil")
	}
	if mm.Module("nope.dll") != nil {
		t.Error("Module(nope.dll) != nil")
	}
	if got := len(mm.Modules()); got != 3 {
		t.Errorf("len(Modules()) = %d, want 3", got)
	}
	if s := mm.String(); !strings.Contains(s, "vim.exe") || !strings.Contains(s, "kernel32.dll") {
		t.Errorf("String() missing module names: %s", s)
	}
}

// Property: Locate agrees with a linear scan for arbitrary addresses.
func TestModuleMapLocatePropertyQuick(t *testing.T) {
	mm := testModuleMap(t)
	mods := mm.Modules()
	linear := func(addr uint64) *Module {
		for _, m := range mods {
			if m.Contains(addr) {
				return m
			}
		}
		return nil
	}
	f := func(addr uint64) bool {
		return mm.Locate(addr) == linear(addr)
	}
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			// Bias half the probes into and around module ranges so the
			// test exercises boundaries, not just the empty space.
			var a uint64
			if r.Intn(2) == 0 {
				m := mods[r.Intn(len(mods))]
				a = m.Base + uint64(r.Int63n(int64(m.Size)+16)) - 8
			} else {
				a = r.Uint64()
			}
			vals[0] = reflect.ValueOf(a)
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestModuleSymbolsCopy(t *testing.T) {
	m := mustModule(t, "x.exe", ModuleApp, 0x1000, 0x1000, []Symbol{{Name: "a", Addr: 0x1100}})
	syms := m.Symbols()
	syms[0].Name = "mutated"
	if got, _ := m.FuncAt(0x1100); got != "a" {
		t.Error("Symbols() exposed internal slice")
	}
}
