package trace

import (
	"testing"
	"testing/quick"
)

func TestEventTypeString(t *testing.T) {
	tests := []struct {
		typ  EventType
		want string
	}{
		{EventUnknown, "Unknown"},
		{EventSysCallEnter, "SysCallEnter"},
		{EventNetConnect, "NetConnect"},
		{EventUIMessage, "UIMessage"},
		{EventType(999), "EventType(999)"},
		{EventType(-3), "EventType(-3)"},
	}
	for _, tt := range tests {
		if got := tt.typ.String(); got != tt.want {
			t.Errorf("EventType(%d).String() = %q, want %q", int(tt.typ), got, tt.want)
		}
	}
}

func TestEventTypeRoundTrip(t *testing.T) {
	for i := 1; i < NumEventTypes(); i++ {
		typ := EventType(i)
		got, ok := ParseEventType(typ.String())
		if !ok {
			t.Fatalf("ParseEventType(%q) not recognised", typ.String())
		}
		if got != typ {
			t.Errorf("ParseEventType(%q) = %v, want %v", typ.String(), got, typ)
		}
	}
}

func TestParseEventTypeUnknown(t *testing.T) {
	for _, name := range []string{"", "Unknown", "NoSuchEvent", "syscallenter"} {
		if got, ok := ParseEventType(name); ok {
			t.Errorf("ParseEventType(%q) = %v, ok=true; want not recognised", name, got)
		}
	}
}

func TestEventTypeValid(t *testing.T) {
	if EventUnknown.Valid() {
		t.Error("EventUnknown.Valid() = true, want false")
	}
	if !EventSysCallEnter.Valid() {
		t.Error("EventSysCallEnter.Valid() = false, want true")
	}
	if EventType(NumEventTypes()).Valid() {
		t.Error("out-of-range event type reported valid")
	}
}

func TestFrameString(t *testing.T) {
	f := Frame{Addr: 0x401000, Module: "vim.exe", Function: "main_loop"}
	if got, want := f.String(), "vim.exe!main_loop@0x401000"; got != want {
		t.Errorf("Frame.String() = %q, want %q", got, want)
	}
	unresolved := Frame{Addr: 0xdead}
	if got, want := unresolved.String(), "?!?@0xdead"; got != want {
		t.Errorf("unresolved Frame.String() = %q, want %q", got, want)
	}
	if unresolved.Resolved() {
		t.Error("unresolved frame reports Resolved() = true")
	}
}

func TestStackWalkClone(t *testing.T) {
	s := StackWalk{{Addr: 1}, {Addr: 2}}
	c := s.Clone()
	c[0].Addr = 99
	if s[0].Addr != 1 {
		t.Error("Clone did not deep-copy frames")
	}
	if got := StackWalk(nil).Clone(); got != nil {
		t.Errorf("nil.Clone() = %v, want nil", got)
	}
}

func TestStackWalkAddrs(t *testing.T) {
	s := StackWalk{{Addr: 10}, {Addr: 20}, {Addr: 30}}
	got := s.Addrs()
	want := []uint64{10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("Addrs() len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Addrs()[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestLogCloneIndependence(t *testing.T) {
	l := &Log{
		App: "vim.exe",
		PID: 42,
		Events: []Event{
			{Seq: 0, Type: EventFileRead, Stack: StackWalk{{Addr: 5}}},
		},
	}
	c := l.Clone()
	c.Events[0].Stack[0].Addr = 777
	c.Events[0].Type = EventNetSend
	if l.Events[0].Stack[0].Addr != 5 || l.Events[0].Type != EventFileRead {
		t.Error("Clone shares event state with the original log")
	}
	if c.App != l.App || c.PID != l.PID {
		t.Error("Clone dropped scalar fields")
	}
}

func TestLogCountTypes(t *testing.T) {
	l := &Log{Events: []Event{
		{Type: EventFileRead}, {Type: EventFileRead}, {Type: EventNetSend},
	}}
	counts := l.CountTypes()
	if counts[EventFileRead] != 2 || counts[EventNetSend] != 1 {
		t.Errorf("CountTypes() = %v, want FileRead:2 NetSend:1", counts)
	}
	if l.Len() != 3 {
		t.Errorf("Len() = %d, want 3", l.Len())
	}
}

func TestStackWalkClonePropertyQuick(t *testing.T) {
	// Property: cloning preserves addresses for arbitrary stacks.
	f := func(addrs []uint64) bool {
		s := make(StackWalk, len(addrs))
		for i, a := range addrs {
			s[i].Addr = a
		}
		c := s.Clone()
		if len(c) != len(s) {
			return false
		}
		for i := range s {
			if c[i].Addr != s[i].Addr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
