package serve

import (
	"net/http"
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestSessionSpecClientID covers client-requested session identifiers:
// placement-by-ID is what lets a fleet router consistent-hash a session
// before it exists.
func TestSessionSpecClientID(t *testing.T) {
	_, logs := newTestModel(t)
	s := newTestServer(t, Config{Parallel: 1})
	drv := NewDriver(s)

	spec := SessionSpecOf(logs.Malicious, "")
	spec.ID = "s00042"
	info, err := drv.CreateSession(spec)
	if err != nil {
		t.Fatalf("create with id: %v", err)
	}
	if info.ID != "s00042" {
		t.Fatalf("created session id %q, want the requested s00042", info.ID)
	}

	if _, err := drv.CreateSession(spec); !IsStatus(err, http.StatusConflict) {
		t.Errorf("duplicate id create: err %v, want 409", err)
	}

	for _, bad := range []string{"-leading", "a/b", "has space", string(make([]byte, 65))} {
		spec.ID = bad
		if _, err := drv.CreateSession(spec); !IsStatus(err, http.StatusBadRequest) {
			t.Errorf("create with id %q: err %v, want 400", bad, err)
		}
	}
}

// TestExportImportContinuity is the core handoff guarantee: a session
// scored partly on one replica, exported, imported into another replica
// and scored to completion produces the byte-identical verdict stream of
// a session that never moved.
func TestExportImportContinuity(t *testing.T) {
	mon, logs := newTestModel(t)
	loser := newTestServer(t, Config{Parallel: 1, ReplicaID: "r0"})
	gainer := newTestServer(t, Config{Parallel: 1, ReplicaID: "r1"})
	ldrv, gdrv := NewDriver(loser), NewDriver(gainer)

	mal := logs.Malicious
	events := mal.Events[:4*mon.Window()]
	want := referenceVerdicts(t, mon, mal, events)
	cut := len(events)/2 + 3 // mid-window, so partial state must travel

	spec := SessionSpecOf(mal, "")
	spec.ID = "handoff-1"
	if _, err := ldrv.CreateSession(spec); err != nil {
		t.Fatal(err)
	}
	got := []Verdict{}
	res, err := ldrv.Ingest(spec.ID, EventBatch{Events: EventSpecsOf(events[:cut])})
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, res.Verdicts...)

	ex, err := ldrv.Export(spec.ID)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if ex.ID != spec.ID || ex.Replica != "r0" || len(ex.Checkpoint) == 0 {
		t.Fatalf("export envelope %+v: wrong identity or empty checkpoint", ex)
	}
	// The session is gone from the loser.
	if _, err := ldrv.Session(spec.ID); !IsStatus(err, http.StatusNotFound) {
		t.Errorf("session still on loser after export: err %v, want 404", err)
	}
	if _, err := ldrv.Export(spec.ID); !IsStatus(err, http.StatusNotFound) {
		t.Errorf("double export: err %v, want 404", err)
	}

	info, err := gdrv.Import(ex)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if info.ID != spec.ID || info.Replica != "r1" || info.Verdicts != len(got) {
		t.Fatalf("imported info %+v, want id %s on r1 with %d verdicts", info, spec.ID, len(got))
	}
	// Importing the same envelope twice conflicts.
	if _, err := gdrv.Import(ex); !IsStatus(err, http.StatusConflict) {
		t.Errorf("duplicate import: err %v, want 409", err)
	}

	res, err = gdrv.Ingest(spec.ID, EventBatch{Events: EventSpecsOf(events[cut:])})
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, res.Verdicts...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("verdicts across handoff differ from the unmoved reference:\n got %d verdicts %+v\nwant %d verdicts %+v",
			len(got), got, len(want), want)
	}
}

// TestDrainLifecycle: a draining replica fails readiness and refuses new
// sessions and imports, but keeps scoring resident sessions; undrain
// restores service.
func TestDrainLifecycle(t *testing.T) {
	mon, logs := newTestModel(t)
	s := newTestServer(t, Config{Parallel: 1, ReplicaID: "r0"})
	drv := NewDriver(s)

	spec := SessionSpecOf(logs.Malicious, "")
	spec.ID = "resident-1"
	if _, err := drv.CreateSession(spec); err != nil {
		t.Fatal(err)
	}

	st, err := drv.Drain()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !st.Draining || !reflect.DeepEqual(st.Sessions, []string{"resident-1"}) {
		t.Fatalf("drain status %+v, want draining with [resident-1]", st)
	}

	if err := drv.do(http.MethodGet, "/readyz", nil, nil); !IsStatus(err, http.StatusServiceUnavailable) {
		t.Errorf("readyz while draining: err %v, want 503", err)
	}
	spec2 := SessionSpecOf(logs.Malicious, "")
	if _, err := drv.CreateSession(spec2); !IsStatus(err, http.StatusServiceUnavailable) {
		t.Errorf("create while draining: err %v, want 503", err)
	}
	if _, err := drv.Import(SessionExport{ID: "x1", Spec: spec2}); !IsStatus(err, http.StatusConflict) {
		t.Errorf("import while draining: err %v, want 409", err)
	}
	// Resident sessions keep scoring.
	if _, err := drv.Ingest("resident-1", EventBatch{
		Events: EventSpecsOf(logs.Malicious.Events[:mon.Window()]),
	}); err != nil {
		t.Errorf("ingest while draining: %v", err)
	}

	if st, err = drv.Undrain(); err != nil || st.Draining {
		t.Fatalf("undrain: status %+v err %v", st, err)
	}
	if err := drv.do(http.MethodGet, "/readyz", nil, nil); err != nil {
		t.Errorf("readyz after undrain: %v", err)
	}
}

// TestImportPinsEntryAcrossPromotion is the handoff × promotion
// interaction: a session created against the old champion and handed off
// after a promotion must rebind the old champion's entry on the gaining
// replica — not the new current — so its verdict stream never forks.
func TestImportPinsEntryAcrossPromotion(t *testing.T) {
	mon, logs := newTestModel(t)
	st, manA, manB := registryFixture(t)
	loser := newTestServer(t, Config{
		Registry: st, Preloaded: map[string]*core.Monitor{}, Parallel: 1, ReplicaID: "r0",
	})
	gainer := newTestServer(t, Config{
		Registry: st, Preloaded: map[string]*core.Monitor{}, Parallel: 1, ReplicaID: "r1",
	})
	ldrv, gdrv := NewDriver(loser), NewDriver(gainer)

	mal := logs.Malicious
	events := mal.Events[:4*mon.Window()]
	want := referenceVerdicts(t, mon, mal, events) // champion-only reference
	cut := len(events)/2 + 1

	spec := SessionSpecOf(mal, "")
	spec.ID = "pinned-1"
	info, err := ldrv.CreateSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	if info.Entry != manA.ID {
		t.Fatalf("session entry %q, want champion %s", info.Entry, manA.ID)
	}
	got := []Verdict{}
	res, err := ldrv.Ingest(spec.ID, EventBatch{Events: EventSpecsOf(events[:cut])})
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, res.Verdicts...)

	// Promote the challenger fleet-wide; both replicas hot-reload.
	if _, err := st.Promote(manB.ID, "test"); err != nil {
		t.Fatal(err)
	}
	if err := loser.Reload(); err != nil {
		t.Fatal(err)
	}
	if err := gainer.Reload(); err != nil {
		t.Fatal(err)
	}

	ex, err := ldrv.Export(spec.ID)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if ex.Entry != manA.ID {
		t.Fatalf("export pins entry %q, want the session's champion %s", ex.Entry, manA.ID)
	}
	ginfo, err := gdrv.Import(ex)
	if err != nil {
		t.Fatalf("import after promotion: %v", err)
	}
	if ginfo.Entry != manA.ID {
		t.Fatalf("imported session bound entry %q, want pinned champion %s (current is %s)",
			ginfo.Entry, manA.ID, manB.ID)
	}

	res, err = gdrv.Ingest(spec.ID, EventBatch{Events: EventSpecsOf(events[cut:])})
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, res.Verdicts...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("handed-off session forked from its pinned model after promotion: got %d verdicts, want %d",
			len(got), len(want))
	}

	// A fresh session on the gainer scores with the new champion.
	fresh := SessionSpecOf(mal, "")
	finfo, err := gdrv.CreateSession(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if finfo.Entry != manB.ID {
		t.Errorf("post-promotion session entry %q, want new champion %s", finfo.Entry, manB.ID)
	}
}

// TestImportUnknownEntryConflicts: importing a session pinned to an
// entry the replica's registry does not hold (sync lag) is refused with
// 409, not silently rebound.
func TestImportUnknownEntryConflicts(t *testing.T) {
	_, logs := newTestModel(t)
	st, _, _ := registryFixture(t)
	s := newTestServer(t, Config{
		Registry: st, Preloaded: map[string]*core.Monitor{}, Parallel: 1,
	})
	drv := NewDriver(s)

	spec := SessionSpecOf(logs.Malicious, "")
	ex := SessionExport{ID: "lagged-1", Model: "default", Spec: spec, Entry: "ffffffffffff"}
	if _, err := drv.Import(ex); !IsStatus(err, http.StatusConflict) {
		t.Errorf("import with unknown pinned entry: err %v, want 409", err)
	}
}
