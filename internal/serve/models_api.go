package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/registry"
)

// ModelsInfo is the JSON body of GET /v1/models: the registry-backed
// model's catalogue, which entry is serving, the pointer history, and
// any active shadow evaluation.
type ModelsInfo struct {
	// Model is the name sessions use to reach the registry-backed model.
	Model string `json:"model"`
	// Loaded is the registry entry the server is scoring with right now;
	// Current is the entry the registry pointer names. They differ only
	// between a pointer move and the reload that follows it.
	Loaded  string `json:"loaded"`
	Current string `json:"current"`
	// Entries is the registry catalogue, oldest first.
	Entries []registry.Manifest `json:"entries"`
	// History is the promotion/rollback log, oldest first.
	History []registry.Transition `json:"history,omitempty"`
	// Shadow is the active shadow evaluation, absent when none runs.
	Shadow *ShadowStatus `json:"shadow,omitempty"`
}

// ShadowStatus reports one shadow evaluation: the accumulated
// champion/challenger comparison, the replay lag in events, and what
// the promotion gate would decide on the evidence so far.
type ShadowStatus struct {
	registry.Comparison
	Lag      int               `json:"lag"`
	Decision registry.Decision `json:"decision"`
}

// shadowStatus snapshots the canary for the API.
func (s *Server) shadowStatus(c *registry.Canary) *ShadowStatus {
	st := c.Status()
	return &ShadowStatus{Comparison: st, Lag: c.Lag(), Decision: s.cfg.Gate.Decide(st)}
}

// registryModel returns the registry-backed model; the lifecycle routes
// are only registered when one exists.
func (s *Server) registryModel() *model {
	return s.models[s.cfg.RegistryModel]
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	store := s.cfg.Registry
	m := s.registryModel()
	entries, err := store.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "listing registry: %v", err)
		return
	}
	hist, err := store.History()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reading history: %v", err)
		return
	}
	_, entry, _ := m.snapshot()
	info := ModelsInfo{Model: m.name, Loaded: entry, Entries: entries, History: hist}
	if ptr, ok, err := store.Current(); err == nil && ok {
		info.Current = ptr.ID
	}
	if c := s.canary.Load(); c != nil {
		info.Shadow = s.shadowStatus(c)
	}
	writeJSON(w, http.StatusOK, info)
}

// shadowRequest asks to start shadow evaluation of one registry entry.
type shadowRequest struct {
	ID string `json:"id"`
}

func (s *Server) handleShadowStart(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	var req shadowRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if cur := s.canary.Load(); cur != nil {
		writeError(w, http.StatusConflict,
			"shadow evaluation of %s already active; stop it first (DELETE /v1/models/shadow)", cur.ID())
		return
	}
	m := s.registryModel()
	_, entry, mon := m.snapshot()
	if req.ID == entry {
		writeError(w, http.StatusBadRequest, "entry %s is already the serving champion", req.ID)
		return
	}
	rc, err := s.cfg.Registry.OpenBundle(req.ID)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	challenger, err := core.LoadMonitor(rc)
	rc.Close()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "loading challenger %s: %v", req.ID, err)
		return
	}
	if challenger.Window() != mon.Window() {
		writeError(w, http.StatusConflict,
			"window mismatch: champion scores %d-event windows, challenger %s scores %d; verdicts cannot be compared",
			mon.Window(), req.ID, challenger.Window())
		return
	}
	c, err := registry.NewCanary(req.ID, challenger, s.cfg.ShadowQueue)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "starting canary: %v", err)
		return
	}
	if !s.canary.CompareAndSwap(nil, c) {
		c.Stop()
		writeError(w, http.StatusConflict, "shadow evaluation already active")
		return
	}
	s.cfg.Logger.Info("shadow evaluation started", "challenger", req.ID, "champion", entry)
	writeJSON(w, http.StatusCreated, s.shadowStatus(c))
}

func (s *Server) handleShadowStop(w http.ResponseWriter, r *http.Request) {
	c := s.canary.Swap(nil)
	if c == nil {
		writeError(w, http.StatusNotFound, "no shadow evaluation active")
		return
	}
	status := s.shadowStatus(c)
	c.Stop()
	s.cfg.Logger.Info("shadow evaluation stopped", "challenger", c.ID())
	writeJSON(w, http.StatusOK, status)
}

// promoteRequest asks to promote a registry entry to champion. Force
// bypasses the gate (and the need for shadow evidence at all).
type promoteRequest struct {
	ID    string `json:"id"`
	Force bool   `json:"force"`
}

// promoteRejection is the 409 body when the gate blocks a promotion.
type promoteRejection struct {
	Error    string            `json:"error"`
	Decision registry.Decision `json:"decision"`
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	var req promoteRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	store := s.cfg.Registry
	c := s.canary.Load()
	reason := "forced promotion"
	if !req.Force {
		if c == nil || c.ID() != req.ID {
			writeError(w, http.StatusConflict,
				"no shadow evidence for %s; start shadow evaluation first, or pass force", req.ID)
			return
		}
		c.Sync() // judge on a settled comparison, not an in-flight one
		cmp := c.Status()
		d := s.cfg.Gate.Decide(cmp)
		if !d.OK {
			writeJSON(w, http.StatusConflict, promoteRejection{
				Error: "promotion gate rejected " + req.ID, Decision: d,
			})
			return
		}
		reason = "gated promotion: " + gateEvidence(cmp)
	}
	tr, err := store.Promote(req.ID, reason)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.Reload(); err != nil {
		// Keep the pointer honest about what is serving.
		if tr.From != "" {
			if _, rerr := store.SetCurrent(tr.From, "revert: reload after promotion failed"); rerr != nil {
				s.cfg.Logger.Error("reverting failed promotion", "error", rerr)
			}
		}
		writeError(w, http.StatusInternalServerError, "promotion reverted; reload failed: %v", err)
		return
	}
	if c != nil && c.ID() == req.ID && s.canary.CompareAndSwap(c, nil) {
		c.Stop()
	}
	s.cfg.Logger.Info("model promoted", "entry", req.ID, "from", tr.From, "reason", reason)
	writeJSON(w, http.StatusOK, tr)
}

// gateEvidence condenses the comparison a promotion was approved on.
func gateEvidence(c registry.Comparison) string {
	return fmt.Sprintf("shadowed %d events over %d windows", c.Events, c.Windows)
}

// rollbackRequest optionally names the rollback destination; empty means
// the previously-serving entry.
type rollbackRequest struct {
	ID string `json:"id"`
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	// The body is optional: an empty POST rolls back one step.
	var req rollbackRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "decoding request body: %v", err)
		return
	}
	store := s.cfg.Registry
	id := req.ID
	if id == "" {
		var err error
		if id, err = store.RollbackTarget(); err != nil {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
	}
	tr, err := store.Rollback(id, "rollback")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.Reload(); err != nil {
		if tr.From != "" {
			if _, rerr := store.SetCurrent(tr.From, "revert: reload after rollback failed"); rerr != nil {
				s.cfg.Logger.Error("reverting failed rollback", "error", rerr)
			}
		}
		writeError(w, http.StatusInternalServerError, "rollback reverted; reload failed: %v", err)
		return
	}
	s.cfg.Logger.Info("model rolled back", "entry", id, "from", tr.From)
	writeJSON(w, http.StatusOK, tr)
}
