package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/telemetry"
)

// ModelsInfo is the JSON body of GET /v1/models: the registry-backed
// model's catalogue, which entry is serving, the pointer history, and
// any active shadow evaluation.
type ModelsInfo struct {
	// Model is the name sessions use to reach the registry-backed model.
	Model string `json:"model"`
	// Loaded is the registry entry the server is scoring with right now;
	// Current is the entry the registry pointer names. They differ only
	// between a pointer move and the reload that follows it.
	Loaded  string `json:"loaded"`
	Current string `json:"current"`
	// Entries is the registry catalogue, oldest first.
	Entries []registry.Manifest `json:"entries"`
	// History is the promotion/rollback log, oldest first.
	History []registry.Transition `json:"history,omitempty"`
	// Shadow is the active shadow evaluation, absent when none runs.
	Shadow *ShadowStatus `json:"shadow,omitempty"`
}

// ShadowStatus reports one shadow evaluation: the accumulated
// champion/challenger comparison, the replay lag in events, and what
// the promotion gate would decide on the evidence so far.
type ShadowStatus struct {
	registry.Comparison
	Lag      int               `json:"lag"`
	Decision registry.Decision `json:"decision"`
}

// shadowStatus snapshots the canary for the API.
func (s *Server) shadowStatus(c *registry.Canary) *ShadowStatus {
	st := c.Status()
	return &ShadowStatus{Comparison: st, Lag: c.Lag(), Decision: s.cfg.Gate.Decide(st)}
}

// registryModel returns the registry-backed model; the lifecycle routes
// are only registered when one exists.
func (s *Server) registryModel() *model {
	return s.models[s.cfg.RegistryModel]
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	store := s.cfg.Registry
	m := s.registryModel()
	entries, err := store.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "listing registry: %v", err)
		return
	}
	hist, err := store.History()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reading history: %v", err)
		return
	}
	_, entry, _ := m.snapshot()
	info := ModelsInfo{Model: m.name, Loaded: entry, Entries: entries, History: hist}
	if ptr, ok, err := store.Current(); err == nil && ok {
		info.Current = ptr.ID
	}
	if c := s.canary.Load(); c != nil {
		info.Shadow = s.shadowStatus(c)
	}
	writeJSON(w, http.StatusOK, info)
}

// Sentinel errors from the programmatic shadow-lifecycle methods. The
// HTTP layer maps them onto status codes; the autopilot matches them to
// tell retryable conditions from terminal ones.
var (
	// ErrServerClosing: the server is shutting down.
	ErrServerClosing = errors.New("server shutting down")
	// ErrNoRegistry: the server has no registry configured.
	ErrNoRegistry = errors.New("no registry configured")
	// ErrShadowActive: a shadow evaluation is already running.
	ErrShadowActive = errors.New("shadow evaluation already active")
	// ErrAlreadyChampion: the entry is the serving champion already.
	ErrAlreadyChampion = errors.New("entry is already the serving champion")
	// ErrEntryNotFound: the registry holds no such committed entry.
	ErrEntryNotFound = errors.New("no such registry entry")
	// ErrEntryUnloadable: the entry's bundle cannot be loaded.
	ErrEntryUnloadable = errors.New("challenger bundle unloadable")
	// ErrWindowMismatch: champion and challenger window lengths differ,
	// so their verdicts cannot be compared.
	ErrWindowMismatch = errors.New("window mismatch")
)

// StartShadow begins shadow evaluation of a registry entry against live
// traffic on the registry-backed model. It is the programmatic core of
// POST /v1/models/shadow and the autopilot's canary hook.
func (s *Server) StartShadow(entry string) error {
	if s.closing.Load() {
		return ErrServerClosing
	}
	m := s.registryModel()
	if s.cfg.Registry == nil || m == nil {
		return ErrNoRegistry
	}
	if cur := s.canary.Load(); cur != nil {
		return fmt.Errorf("%w: evaluating %s; stop it first (DELETE /v1/models/shadow)",
			ErrShadowActive, cur.ID())
	}
	_, champ, mon := m.snapshot()
	if entry == champ {
		return fmt.Errorf("%w: %s", ErrAlreadyChampion, entry)
	}
	rc, err := s.cfg.Registry.OpenBundle(entry)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrEntryNotFound, err)
	}
	challenger, err := core.LoadMonitor(rc)
	rc.Close()
	if err != nil {
		return fmt.Errorf("%w: loading %s: %v", ErrEntryUnloadable, entry, err)
	}
	if challenger.Window() != mon.Window() {
		return fmt.Errorf("%w: champion scores %d-event windows, challenger %s scores %d; verdicts cannot be compared",
			ErrWindowMismatch, mon.Window(), entry, challenger.Window())
	}
	c, err := registry.NewCanary(entry, challenger, s.cfg.ShadowQueue)
	if err != nil {
		return fmt.Errorf("starting canary: %w", err)
	}
	if !s.canary.CompareAndSwap(nil, c) {
		c.Stop()
		return ErrShadowActive
	}
	s.cfg.Logger.Info("shadow evaluation started", "challenger", entry, "champion", champ)
	return nil
}

// StopShadow ends any active shadow evaluation, reporting whether one
// was running.
func (s *Server) StopShadow() bool {
	c := s.canary.Swap(nil)
	if c == nil {
		return false
	}
	c.Stop()
	s.cfg.Logger.Info("shadow evaluation stopped", "challenger", c.ID())
	return true
}

// ShadowComparison snapshots the active shadow evaluation's accumulated
// champion/challenger evidence; ok reports whether one is running.
func (s *Server) ShadowComparison() (cmp registry.Comparison, ok bool) {
	c := s.canary.Load()
	if c == nil {
		return registry.Comparison{}, false
	}
	return c.Status(), true
}

// shadowErrorStatus maps StartShadow's sentinel errors onto the HTTP
// codes the handler has always answered with.
func shadowErrorStatus(err error) int {
	switch {
	case errors.Is(err, ErrServerClosing):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrShadowActive), errors.Is(err, ErrWindowMismatch):
		return http.StatusConflict
	case errors.Is(err, ErrAlreadyChampion):
		return http.StatusBadRequest
	case errors.Is(err, ErrEntryNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrEntryUnloadable):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// shadowRequest asks to start shadow evaluation of one registry entry.
type shadowRequest struct {
	ID string `json:"id"`
}

func (s *Server) handleShadowStart(w http.ResponseWriter, r *http.Request) {
	var req shadowRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := s.StartShadow(req.ID); err != nil {
		writeError(w, shadowErrorStatus(err), "%v", err)
		return
	}
	if c := s.canary.Load(); c != nil {
		writeJSON(w, http.StatusCreated, s.shadowStatus(c))
		return
	}
	// Raced with an immediate stop; report the start without a snapshot.
	writeJSON(w, http.StatusCreated, ShadowStatus{Comparison: registry.Comparison{ChallengerID: req.ID}})
}

func (s *Server) handleShadowStop(w http.ResponseWriter, r *http.Request) {
	c := s.canary.Swap(nil)
	if c == nil {
		writeError(w, http.StatusNotFound, "no shadow evaluation active")
		return
	}
	status := s.shadowStatus(c)
	c.Stop()
	s.cfg.Logger.Info("shadow evaluation stopped", "challenger", c.ID())
	writeJSON(w, http.StatusOK, status)
}

// promoteRequest asks to promote a registry entry to champion. Force
// bypasses the gate (and the need for shadow evidence at all).
type promoteRequest struct {
	ID    string `json:"id"`
	Force bool   `json:"force"`
}

// promoteRejection is the 409 body when the gate blocks a promotion.
type promoteRejection struct {
	Error    string            `json:"error"`
	Decision registry.Decision `json:"decision"`
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	var req promoteRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	store := s.cfg.Registry
	c := s.canary.Load()
	reason := "forced promotion"
	if !req.Force {
		if c == nil || c.ID() != req.ID {
			writeError(w, http.StatusConflict,
				"no shadow evidence for %s; start shadow evaluation first, or pass force", req.ID)
			return
		}
		c.Sync() // judge on a settled comparison, not an in-flight one
		cmp := c.Status()
		d := s.cfg.Gate.Decide(cmp)
		if !d.OK {
			// A gate rejection is exactly the moment an operator wants the
			// recent-history ring preserved: dump it before answering.
			telemetry.RecordFlight(telemetry.FlightEntry{
				Kind:  "gate",
				Name:  req.ID,
				Trace: telemetry.TraceIDFrom(r.Context()),
				Attrs: map[string]string{"decision": "rejected", "reasons": strings.Join(d.Reasons, "; ")},
			})
			if path := telemetry.DumpFlight("gate-rejected"); path != "" {
				s.cfg.Logger.Warn("promotion gate rejected; flight recorder dumped",
					"entry", req.ID, "dump", path)
			}
			writeJSON(w, http.StatusConflict, promoteRejection{
				Error: "promotion gate rejected " + req.ID, Decision: d,
			})
			return
		}
		reason = "gated promotion: " + gateEvidence(cmp)
	}
	tr, err := store.Promote(req.ID, reason)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.Reload(); err != nil {
		// Keep the pointer honest about what is serving.
		if tr.From != "" {
			if _, rerr := store.SetCurrent(tr.From, "revert: reload after promotion failed"); rerr != nil {
				s.cfg.Logger.Error("reverting failed promotion", "error", rerr)
			}
		}
		writeError(w, http.StatusInternalServerError, "promotion reverted; reload failed: %v", err)
		return
	}
	if c != nil && c.ID() == req.ID && s.canary.CompareAndSwap(c, nil) {
		c.Stop()
	}
	s.cfg.Logger.Info("model promoted", "entry", req.ID, "from", tr.From, "reason", reason)
	writeJSON(w, http.StatusOK, tr)
}

// gateEvidence condenses the comparison a promotion was approved on.
func gateEvidence(c registry.Comparison) string {
	return fmt.Sprintf("shadowed %d events over %d windows", c.Events, c.Windows)
}

// rollbackRequest optionally names the rollback destination; empty means
// the previously-serving entry.
type rollbackRequest struct {
	ID string `json:"id"`
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	// The body is optional: an empty POST rolls back one step.
	var req rollbackRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "decoding request body: %v", err)
		return
	}
	store := s.cfg.Registry
	id := req.ID
	if id == "" {
		var err error
		if id, err = store.RollbackTarget(); err != nil {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
	}
	tr, err := store.Rollback(id, "rollback")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.Reload(); err != nil {
		if tr.From != "" {
			if _, rerr := store.SetCurrent(tr.From, "revert: reload after rollback failed"); rerr != nil {
				s.cfg.Logger.Error("reverting failed rollback", "error", rerr)
			}
		}
		writeError(w, http.StatusInternalServerError, "rollback reverted; reload failed: %v", err)
		return
	}
	s.cfg.Logger.Info("model rolled back", "entry", id, "from", tr.From)
	writeJSON(w, http.StatusOK, tr)
}
