package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
)

// Driver exercises a Server's HTTP API in-process, without sockets. Each
// call synthesises a real *http.Request, routes it through Handler() —
// the same tracing middleware, mux patterns, handler code, session
// queue and scoring worker pool a network client exercises — and decodes
// the recorded response. The load simulator (internal/sim) drives its
// replicas through a Driver so a simulated fleet measures the true
// serving path while the event schedule stays free of socket
// non-determinism; tests use it anywhere an httptest listener would be
// overkill.
type Driver struct {
	h http.Handler
}

// NewDriver returns a socket-free client for the server's API.
func NewDriver(s *Server) *Driver {
	return &Driver{h: s.Handler()}
}

// NewHandlerDriver returns a socket-free client for any handler speaking
// the serve API — a fleet router in front of several replicas drives the
// same client surface as a single server.
func NewHandlerDriver(h http.Handler) *Driver {
	return &Driver{h: h}
}

// DriverError is a non-2xx API response surfaced as an error: the HTTP
// status, the decoded error message, and the Retry-After hint (seconds,
// 0 when absent) for 429/503 responses.
type DriverError struct {
	// Status is the HTTP status code of the failed call.
	Status int
	// Msg is the error string from the JSON error envelope.
	Msg string
	// RetryAfter is the Retry-After header in seconds, 0 when absent.
	RetryAfter int
}

// Error implements the error interface.
func (e *DriverError) Error() string {
	return fmt.Sprintf("serve driver: status %d: %s", e.Status, e.Msg)
}

// IsStatus reports whether err is a *DriverError with the given status.
func IsStatus(err error, status int) bool {
	de, ok := err.(*DriverError)
	return ok && de.Status == status
}

// do runs one in-process request and decodes the JSON response into out
// (skipped when out is nil or the response has no body).
func (d *Driver) do(method, target string, body, out any) error {
	var rd *bytes.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("serve driver: encoding %s %s: %w", method, target, err)
		}
		rd = bytes.NewReader(blob)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, target, rd)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	d.h.ServeHTTP(rec, req)
	res := rec.Result()
	defer res.Body.Close()
	if res.StatusCode >= 300 {
		var envelope apiError
		_ = json.NewDecoder(res.Body).Decode(&envelope)
		retry, _ := strconv.Atoi(res.Header.Get("Retry-After"))
		return &DriverError{Status: res.StatusCode, Msg: envelope.Error, RetryAfter: retry}
	}
	if out == nil || res.StatusCode == http.StatusNoContent {
		return nil
	}
	if err := json.NewDecoder(res.Body).Decode(out); err != nil {
		return fmt.Errorf("serve driver: decoding %s %s response: %w", method, target, err)
	}
	return nil
}

// CreateSession opens a session (POST /v1/sessions).
func (d *Driver) CreateSession(spec SessionSpec) (SessionInfo, error) {
	var info SessionInfo
	err := d.do(http.MethodPost, "/v1/sessions", spec, &info)
	return info, err
}

// Session fetches a session's counters (GET /v1/sessions/{id}).
func (d *Driver) Session(id string) (SessionInfo, error) {
	var info SessionInfo
	err := d.do(http.MethodGet, "/v1/sessions/"+id, nil, &info)
	return info, err
}

// Ingest scores one event batch (POST /v1/sessions/{id}/events) and
// returns the completed window verdicts. Backpressure surfaces exactly
// as it does over the network: a full queue is a *DriverError with
// status 429 and a Retry-After hint.
func (d *Driver) Ingest(id string, batch EventBatch) (IngestResult, error) {
	var res IngestResult
	err := d.do(http.MethodPost, "/v1/sessions/"+id+"/events", batch, &res)
	return res, err
}

// DeleteSession discards a session (DELETE /v1/sessions/{id}).
func (d *Driver) DeleteSession(id string) error {
	return d.do(http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}

// Export detaches a session and returns its checkpoint-handoff envelope
// (POST /v1/sessions/{id}/export).
func (d *Driver) Export(id string) (SessionExport, error) {
	var ex SessionExport
	err := d.do(http.MethodPost, "/v1/sessions/"+id+"/export", nil, &ex)
	return ex, err
}

// Import restores a session from a checkpoint-handoff envelope
// (POST /v1/sessions/import).
func (d *Driver) Import(ex SessionExport) (SessionInfo, error) {
	var info SessionInfo
	err := d.do(http.MethodPost, "/v1/sessions/import", ex, &info)
	return info, err
}

// Drain marks the replica draining (POST /v1/drain), returning the
// sessions awaiting export.
func (d *Driver) Drain() (DrainStatus, error) {
	var st DrainStatus
	err := d.do(http.MethodPost, "/v1/drain", nil, &st)
	return st, err
}

// Ready probes readiness (GET /readyz): nil when the target would pass
// a load-balancer health check, a *DriverError with status 503 when it
// is draining or otherwise not ready.
func (d *Driver) Ready() error {
	return d.do(http.MethodGet, "/readyz", nil, nil)
}

// Undrain clears the draining flag (DELETE /v1/drain).
func (d *Driver) Undrain() (DrainStatus, error) {
	var st DrainStatus
	err := d.do(http.MethodDelete, "/v1/drain", nil, &st)
	return st, err
}
