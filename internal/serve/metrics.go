package serve

import "repro/internal/telemetry"

// Serving metrics, registered on the default telemetry registry so they
// appear on the server's own /metrics endpoint alongside the pipeline
// instruments.
var (
	mSessionsActive = telemetry.NewGauge("serve_sessions_active",
		"detection sessions currently resident in memory")
	mSessionsCreated = telemetry.NewCounter("serve_sessions_created_total",
		"detection sessions created over the server's lifetime")
	mSessionsRestored = telemetry.NewCounter("serve_sessions_restored_total",
		"detection sessions restored from spooled checkpoints")
	mSessionsEvicted = telemetry.NewCounter("serve_sessions_evicted_total",
		"idle detection sessions checkpointed to the spool and evicted")
	mQueueDepth = telemetry.NewGauge("serve_queue_depth_events",
		"events enqueued across all sessions awaiting scoring")
	mVerdictSeconds = telemetry.NewHistogram("serve_verdict_seconds",
		"latency from batch enqueue to scored verdicts", telemetry.DurationBuckets())
	mRejected = telemetry.NewCounterVec("serve_rejected_requests_total",
		"requests rejected by protective limits", "cause")
	mEventsIngested = telemetry.NewCounter("serve_events_ingested_total",
		"events accepted into session queues")
	mVerdictsTotal = telemetry.NewCounter("serve_verdicts_total",
		"window verdicts produced across all sessions")
	mModelReloads = telemetry.NewCounter("serve_model_reloads_total",
		"successful hot reloads of the model set")
	mHTTPSeconds = telemetry.NewHistogramVec("serve_http_seconds",
		"HTTP request latency by route", "route", telemetry.DurationBuckets())
	mQueueWaitSeconds = telemetry.NewHistogram("serve_queue_wait_seconds",
		"latency from batch acceptance to worker pickup", telemetry.DurationBuckets())
	mScoreSeconds = telemetry.NewHistogram("serve_score_seconds",
		"detector scoring time per batch", telemetry.DurationBuckets())
	mSessionsExported = telemetry.NewCounter("serve_sessions_exported_total",
		"sessions checkpoint-exported to another replica")
	mSessionsImported = telemetry.NewCounter("serve_sessions_imported_total",
		"sessions restored from another replica's checkpoint export")
)
