package serve

import (
	"errors"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// Errors surfaced by the session queue; the API layer maps them onto
// HTTP statuses (429 for a full queue, 409 for a closed session).
var (
	// ErrQueueFull reports that accepting a batch would push the
	// session's queued-event count past the configured depth.
	ErrQueueFull = errors.New("serve: session queue full")
	// ErrSessionClosed reports an ingest against a session that has been
	// deleted or is shutting down.
	ErrSessionClosed = errors.New("serve: session closed")
)

// ingestReply is the scored outcome of one batch, delivered on the
// batch's done channel.
type ingestReply struct {
	consumed int
	skipped  int
	verdicts []Verdict
	err      error
}

// ingestBatch is one client POST travelling through a session queue.
type ingestBatch struct {
	events []trace.Event
	enq    time.Time
	// trace is the originating request's trace ID; it follows the batch
	// across the queue hand-off so worker-side observations and flight
	// entries join up with the HTTP request that carried the events.
	trace string
	// done is buffered so the scoring worker never blocks on a waiter
	// that timed out and walked away.
	done chan ingestReply
}

// session is one live detection stream: a pinned detector plus a bounded
// queue of batches awaiting scoring. Batches are scored strictly in
// arrival order by a single scheduling turn at a time, so verdicts are
// deterministic regardless of the worker-pool size.
type session struct {
	id       string
	model    string
	spec     SessionSpec // retained for spool metadata
	det      *core.StreamDetector
	mm       *trace.ModuleMap
	window   int
	degraded bool
	// entry is the registry entry id the session's monitor was loaded
	// from ("" for path/preloaded models). Checkpoint handoff ships it so
	// the gaining replica rebinds the same model even after a promotion
	// moved the registry's current pointer.
	entry string
	// ringGen is the fleet ring generation stamped when the session was
	// created or last imported (0 outside a fleet) — the breadcrumb that
	// makes handoff races debuggable. Immutable after construction.
	ringGen int64

	mu        sync.Mutex
	queue     []*ingestBatch
	queued    int // events across queue, bounded by Config.QueueDepth
	scheduled bool
	closed    bool
	created   time.Time
	lastUsed  time.Time
	verdicts  int
	malicious int
}

// enqueue appends a batch, enforcing the event-counted bound. On success
// it reports whether the caller must schedule the session on the work
// channel (the session was idle).
func (s *session) enqueue(b *ingestBatch, depth int) (schedule bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrSessionClosed
	}
	if s.queued+len(b.events) > depth {
		return false, ErrQueueFull
	}
	s.queue = append(s.queue, b)
	s.queued += len(b.events)
	s.lastUsed = time.Now()
	mQueueDepth.Add(float64(len(b.events)))
	mEventsIngested.Add(uint64(len(b.events)))
	if !s.scheduled {
		s.scheduled = true
		return true, nil
	}
	return false, nil
}

// pop removes the head batch, or reports the queue empty and clears the
// scheduled flag so the next enqueue reschedules the session.
func (s *session) pop() (*ingestBatch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		s.scheduled = false
		return nil, false
	}
	b := s.queue[0]
	s.queue[0] = nil
	s.queue = s.queue[1:]
	s.queued -= len(b.events)
	mQueueDepth.Add(-float64(len(b.events)))
	return b, true
}

// score feeds one batch through the detector and accounts the verdicts.
// Only the scheduling turn that owns the session calls it, so detector
// access is serial and batch order is preserved.
func (s *session) score(b *ingestBatch) ingestReply {
	var rep ingestReply
	// Size the verdict slice once from the window arithmetic instead of
	// growing it append by append mid-turn.
	if s.window > 0 {
		if n := (s.det.Pending() + len(b.events)) / s.window; n > 0 {
			rep.verdicts = make([]Verdict, 0, n)
		}
	}
	for _, e := range b.events {
		det, err := s.det.Feed(e)
		var evErr *core.EventError
		switch {
		case errors.As(err, &evErr):
			rep.skipped++
		case err != nil:
			rep.err = err
			return rep
		default:
			rep.consumed++
		}
		if det != nil {
			rep.verdicts = append(rep.verdicts, verdictOf(*det))
		}
	}
	if n := len(rep.verdicts); n > 0 {
		mVerdictsTotal.Add(uint64(n))
		s.mu.Lock()
		s.verdicts += n
		for _, v := range rep.verdicts {
			if v.Malicious {
				s.malicious++
			}
		}
		s.mu.Unlock()
	}
	mVerdictSeconds.ObserveTraced(time.Since(b.enq).Seconds(), b.trace)
	return rep
}

// Queued returns the events accepted but not yet scored.
func (s *session) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// idleSince reports whether the session has been untouched since the
// cutoff and holds no queued or in-flight work, making it evictable.
func (s *session) idleSince(cutoff time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.scheduled && len(s.queue) == 0 && !s.closed && s.lastUsed.Before(cutoff)
}

// close marks the session closed and fails every queued batch with
// ErrSessionClosed, returning once no scheduling turn is in flight.
func (s *session) close() {
	for {
		s.mu.Lock()
		if s.scheduled {
			// A worker owns the session; let its turn finish draining.
			s.mu.Unlock()
			time.Sleep(time.Millisecond)
			continue
		}
		s.closed = true
		pending := s.queue
		s.queue = nil
		if s.queued > 0 {
			mQueueDepth.Add(-float64(s.queued))
			s.queued = 0
		}
		s.mu.Unlock()
		for _, b := range pending {
			b.done <- ingestReply{err: ErrSessionClosed}
		}
		return
	}
}

// quiesce blocks until the session's queue is drained and no scheduling
// turn is running, then marks it closed. Unlike close it lets queued
// batches score first — the graceful-shutdown path.
func (s *session) quiesce() {
	for {
		s.mu.Lock()
		if !s.scheduled && len(s.queue) == 0 {
			s.closed = true
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
}
