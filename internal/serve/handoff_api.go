package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Checkpoint handoff: the serve half of the fleet layer's session
// rebalancing. When a router moves a session between replicas it POSTs
// /v1/sessions/{id}/export on the losing replica — which quiesces the
// session, detaches it and returns a SessionExport envelope — and
// replays that envelope into POST /v1/sessions/import on the gaining
// replica, which restores the detector from the embedded checkpoint.
// The envelope reuses the SIGTERM spool formats (the binary
// core.StreamDetector checkpoint plus the spool sidecar's metadata
// fields), so a handed-off session scores byte-identically to one that
// never moved. POST /v1/drain marks a replica as leaving the ring:
// readiness fails and new sessions are refused while resident sessions
// keep scoring until each is exported away.

// RingGenHeader carries the fleet router's ring generation on forwarded
// session-creation and import requests, stamping sessions with the ring
// epoch that placed them.
const RingGenHeader = "X-Leaps-Ring-Generation"

// SessionExport is the checkpoint-handoff envelope returned by
// POST /v1/sessions/{id}/export and accepted by POST /v1/sessions/import:
// the spool sidecar's metadata plus the binary detector checkpoint.
type SessionExport struct {
	// ID, Model, Spec, Created, Verdicts and Malicious mirror the spool
	// metadata sidecar.
	ID        string      `json:"id"`
	Model     string      `json:"model"`
	Spec      SessionSpec `json:"spec"`
	Created   time.Time   `json:"created"`
	Verdicts  int         `json:"verdicts"`
	Malicious int         `json:"malicious"`
	// Entry pins the registry entry the session's monitor was loaded
	// from, so the importing replica rebinds the same model even if the
	// fleet promoted a new champion since the session was created.
	Entry string `json:"entry,omitempty"`
	// Replica names the exporting replica, for the handoff audit trail.
	Replica string `json:"replica,omitempty"`
	// Checkpoint is the binary detector checkpoint (base64 in JSON), the
	// same bytes the SIGTERM spool writes.
	Checkpoint []byte `json:"checkpoint"`
}

// validSessionID vets a client-requested session identifier: session ids
// become spool file names, so they are restricted to filename-safe
// characters and bounded length.
func validSessionID(id string) error {
	if id == "" {
		return fmt.Errorf("serve: empty session id")
	}
	if len(id) > 64 {
		return fmt.Errorf("serve: session id longer than 64 bytes")
	}
	for i, r := range id {
		alnum := r >= '0' && r <= '9' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z'
		if i == 0 && !alnum {
			return fmt.Errorf("serve: session id %q must start with a letter or digit", id)
		}
		if !alnum && r != '.' && r != '_' && r != '-' {
			return fmt.Errorf("serve: session id %q contains %q (allowed: letters, digits, '.', '_', '-')", id, r)
		}
	}
	return nil
}

// sessionTaken reports whether a session id is already in use, resident
// or spooled.
func (s *Server) sessionTaken(id string) bool {
	s.sessMu.RLock()
	_, ok := s.sessions[id]
	s.sessMu.RUnlock()
	if ok {
		return true
	}
	if s.cfg.SpoolDir != "" {
		if _, err := os.Stat(filepath.Join(s.cfg.SpoolDir, id+".json")); err == nil {
			return true
		}
	}
	return false
}

// ringGenFrom reads the router's ring-generation stamp off a forwarded
// request (0 when absent or unparseable).
func ringGenFrom(r *http.Request) int64 {
	gen, _ := strconv.ParseInt(r.Header.Get(RingGenHeader), 10, 64)
	return gen
}

// handleExport detaches a session and returns its checkpoint-handoff
// envelope. The session is quiesced first — every queued batch scores
// before the checkpoint is cut — then removed; after a successful export
// the session no longer exists on this replica. A checkpoint failure
// reinstates the session unharmed.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Force a spool restore if the session was evicted, then claim it by
	// removing it from the map: the claim is what makes concurrent
	// exports of the same session race-safe (exactly one wins).
	if _, err := s.getSession(id); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	s.sessMu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.sessMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no session %q", id)
		return
	}
	mSessionsActive.Add(-1)
	sess.quiesce()

	var buf bytes.Buffer
	if err := sess.det.Checkpoint(&buf); err != nil {
		// Reinstate: the session never left.
		sess.mu.Lock()
		sess.closed = false
		sess.mu.Unlock()
		s.sessMu.Lock()
		s.sessions[id] = sess
		s.sessMu.Unlock()
		mSessionsActive.Add(1)
		writeError(w, http.StatusInternalServerError, "checkpointing session: %v", err)
		return
	}
	sess.mu.Lock()
	ex := SessionExport{
		ID:         sess.id,
		Model:      sess.model,
		Spec:       sess.spec,
		Created:    sess.created,
		Verdicts:   sess.verdicts,
		Malicious:  sess.malicious,
		Entry:      sess.entry,
		Replica:    s.cfg.ReplicaID,
		Checkpoint: buf.Bytes(),
	}
	sess.mu.Unlock()
	// The spool copy (if any) is stale once the export leaves.
	if s.cfg.SpoolDir != "" {
		_ = core.RemoveSpoolCheckpoint(s.cfg.SpoolDir, id)
		_ = os.Remove(filepath.Join(s.cfg.SpoolDir, id+".json"))
	}
	mSessionsExported.Inc()
	telemetry.RecordFlight(telemetry.FlightEntry{
		Kind:  "handoff",
		Name:  id,
		Trace: telemetry.TraceIDFrom(r.Context()),
		Attrs: map[string]string{
			"dir":      "export",
			"replica":  s.cfg.ReplicaID,
			"ring_gen": strconv.FormatInt(ringGenFrom(r), 10),
		},
	})
	s.cfg.Logger.Info("session exported", "session", id, "verdicts", ex.Verdicts)
	writeJSON(w, http.StatusOK, ex)
}

// handleImport restores a session from another replica's checkpoint
// export. The detector resumes from the embedded checkpoint bound to the
// same model — when the export pins a registry entry that is no longer
// this replica's current champion, the pinned entry's bundle is loaded
// from the registry, preserving the session's verdict continuity across
// promotions. A draining replica refuses imports (it is leaving the
// ring, not gaining members' sessions).
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusConflict, "replica draining; not accepting imports")
		return
	}
	var ex SessionExport
	if !s.decodeBody(w, r, &ex) {
		return
	}
	if err := validSessionID(ex.ID); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.sessionTaken(ex.ID) {
		writeError(w, http.StatusConflict, "session %q already exists", ex.ID)
		return
	}
	m, err := s.resolveModel(ex.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	mm, err := ex.Spec.ModuleMap()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	_, curEntry, mon := m.snapshot()
	entry := curEntry
	switch {
	case ex.Entry == "" || ex.Entry == curEntry:
		// The current monitor is the right binding.
	case m.store == nil:
		// No registry to pin against; the current monitor is the best
		// available binding. Continuity is not guaranteed across a path
		// reload, exactly as with spool restores.
		s.cfg.Logger.Warn("import pins an entry but model has no registry; binding current monitor",
			"session", ex.ID, "entry", ex.Entry)
	default:
		rc, err := m.store.OpenBundle(ex.Entry)
		if err != nil {
			writeError(w, http.StatusConflict,
				"pinned entry %s not in this replica's registry (sync lag?): %v", ex.Entry, err)
			return
		}
		pinned, err := core.LoadMonitor(rc)
		rc.Close()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "loading pinned entry %s: %v", ex.Entry, err)
			return
		}
		mon, entry = pinned, ex.Entry
	}
	det, err := mon.RestoreStream(mm, bytes.NewReader(ex.Checkpoint))
	if err != nil {
		writeError(w, http.StatusBadRequest, "restoring checkpoint: %v", err)
		return
	}
	now := time.Now()
	sess := &session{
		id:        ex.ID,
		model:     m.name,
		spec:      ex.Spec,
		det:       det,
		mm:        mm,
		window:    mon.Window(),
		degraded:  det.Degraded(),
		entry:     entry,
		ringGen:   ringGenFrom(r),
		created:   ex.Created,
		lastUsed:  now,
		verdicts:  ex.Verdicts,
		malicious: ex.Malicious,
	}
	s.sessMu.Lock()
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.sessMu.Unlock()
		mRejected.With("session_limit").Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			"session limit %d reached", s.cfg.MaxSessions)
		return
	}
	if _, dup := s.sessions[sess.id]; dup {
		s.sessMu.Unlock()
		writeError(w, http.StatusConflict, "session %q already exists", sess.id)
		return
	}
	s.sessions[sess.id] = sess
	s.sessMu.Unlock()
	mSessionsActive.Add(1)
	mSessionsImported.Inc()
	telemetry.RecordFlight(telemetry.FlightEntry{
		Kind:  "handoff",
		Name:  sess.id,
		Trace: telemetry.TraceIDFrom(r.Context()),
		Attrs: map[string]string{
			"dir":      "import",
			"replica":  s.cfg.ReplicaID,
			"from":     ex.Replica,
			"ring_gen": strconv.FormatInt(sess.ringGen, 10),
		},
	})
	s.cfg.Logger.Info("session imported",
		"session", sess.id, "from", ex.Replica, "entry", entry, "verdicts", sess.verdicts)
	w.Header().Set("Location", "/v1/sessions/"+sess.id)
	writeJSON(w, http.StatusCreated, s.sessionInfo(sess, false))
}

// DrainStatus is the JSON body of the drain endpoints: the draining flag
// and the sessions still resident on the replica (sorted, so a router
// can export them deterministically).
type DrainStatus struct {
	// Draining reports whether the replica is refusing new sessions.
	Draining bool `json:"draining"`
	// Sessions lists resident session ids, sorted.
	Sessions []string `json:"sessions"`
}

// handleDrainStart marks the replica draining: readiness fails, new
// sessions and imports are refused, resident sessions keep scoring. The
// response lists the sessions awaiting export.
func (s *Server) handleDrainStart(w http.ResponseWriter, r *http.Request) {
	s.draining.Store(true)
	s.cfg.Logger.Info("drain started", "replica", s.cfg.ReplicaID)
	writeJSON(w, http.StatusOK, DrainStatus{Draining: true, Sessions: s.residentSessions()})
}

// handleDrainStop clears the draining flag — a drained replica rejoining
// the ring becomes ready again.
func (s *Server) handleDrainStop(w http.ResponseWriter, r *http.Request) {
	s.draining.Store(false)
	s.cfg.Logger.Info("drain stopped", "replica", s.cfg.ReplicaID)
	writeJSON(w, http.StatusOK, DrainStatus{Draining: false, Sessions: s.residentSessions()})
}

// residentSessions lists resident session ids, sorted.
func (s *Server) residentSessions() []string {
	s.sessMu.RLock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.sessMu.RUnlock()
	sort.Strings(ids)
	return ids
}
