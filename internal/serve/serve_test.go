package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/svm"
	"repro/internal/trace"
)

// testModel caches one trained monitor and its dataset across tests;
// training dominates test time and every test can share the bundle.
var (
	testModelOnce sync.Once
	testMonitor   *core.Monitor
	testBundleRaw []byte
	testLogs      *dataset.Logs
	testModelErr  error
)

func newTestModel(t *testing.T) (*core.Monitor, *dataset.Logs) {
	t.Helper()
	testModelOnce.Do(func() {
		spec, err := dataset.ByName("vim_reverse_tcp")
		if err != nil {
			testModelErr = err
			return
		}
		logs, err := spec.Generate(7)
		if err != nil {
			testModelErr = err
			return
		}
		td, err := core.BuildTrainingData(logs.Benign, logs.Mixed, core.Config{
			Seed:        7,
			FixedParams: &svm.Params{Lambda: 8, Kernel: svm.RBFKernel{Sigma2: 2}},
		})
		if err != nil {
			testModelErr = err
			return
		}
		clf, err := td.Train()
		if err != nil {
			testModelErr = err
			return
		}
		var buf bytes.Buffer
		if err := clf.Save(&buf); err != nil {
			testModelErr = err
			return
		}
		testBundleRaw = append([]byte(nil), buf.Bytes()...)
		testMonitor, testModelErr = core.LoadMonitor(&buf)
		testLogs = logs
	})
	if testModelErr != nil {
		t.Fatal(testModelErr)
	}
	return testMonitor, testLogs
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	mon, _ := newTestModel(t)
	if cfg.Preloaded == nil {
		cfg.Preloaded = map[string]*core.Monitor{"default": mon}
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// referenceVerdicts scores events through a plain StreamDetector.
func referenceVerdicts(t *testing.T, mon *core.Monitor, log *trace.Log, events []trace.Event) []Verdict {
	t.Helper()
	det, err := mon.Stream(log.Modules)
	if err != nil {
		t.Fatal(err)
	}
	out := []Verdict{}
	for _, e := range events {
		d, err := det.Feed(e)
		if err != nil {
			t.Fatal(err)
		}
		if d != nil {
			out = append(out, verdictOf(*d))
		}
	}
	return out
}

// httpJSON drives one request and decodes the JSON response into out.
func httpJSON(t *testing.T, client *http.Client, method, url string, body, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(blob) > 0 {
		if err := json.Unmarshal(blob, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, blob, err)
		}
	}
	return resp
}

// createSession opens a session for the test log and returns its info.
func createSession(t *testing.T, ts *httptest.Server, log *trace.Log) SessionInfo {
	t.Helper()
	var info SessionInfo
	resp := httpJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", SessionSpecOf(log, ""), &info)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session: status %d", resp.StatusCode)
	}
	if info.ID == "" || info.Window <= 0 {
		t.Fatalf("create session: info %+v", info)
	}
	return info
}

// ingest posts one batch of wire events and returns the result.
func ingest(t *testing.T, ts *httptest.Server, id string, events []EventSpec) IngestResult {
	t.Helper()
	var res IngestResult
	url := fmt.Sprintf("%s/v1/sessions/%s/events", ts.URL, id)
	resp := httpJSON(t, ts.Client(), "POST", url, EventBatch{Events: events}, &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	return res
}

func TestServeSessionLifecycle(t *testing.T) {
	mon, logs := newTestModel(t)
	s := newTestServer(t, Config{Parallel: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mal := logs.Malicious
	n := 4 * mon.Window()
	events := mal.Events[:n]
	want := referenceVerdicts(t, mon, mal, events)

	info := createSession(t, ts, mal)
	if info.Model != "default" || info.App != mal.App || info.Degraded {
		t.Fatalf("session info %+v", info)
	}

	// Stream in uneven batches; verdict order must match the reference.
	wire := EventSpecsOf(events)
	got := []Verdict{}
	for i := 0; i < len(wire); {
		end := i + mon.Window()/2 + 1
		if end > len(wire) {
			end = len(wire)
		}
		res := ingest(t, ts, info.ID, wire[i:end])
		if res.Skipped != 0 {
			t.Fatalf("batch [%d:%d] skipped %d events", i, end, res.Skipped)
		}
		got = append(got, res.Verdicts...)
		i = end
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed verdicts differ from reference: %d vs %d", len(got), len(want))
	}

	var state SessionInfo
	resp := httpJSON(t, ts.Client(), "GET", ts.URL+"/v1/sessions/"+info.ID+"?checkpoint=1", nil, &state)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get session: status %d", resp.StatusCode)
	}
	if state.Consumed != n || state.Verdicts != len(want) || state.Checkpoint == "" {
		t.Fatalf("session state %+v, want consumed=%d verdicts=%d with checkpoint", state, n, len(want))
	}

	resp = httpJSON(t, ts.Client(), "DELETE", ts.URL+"/v1/sessions/"+info.ID, nil, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	resp = httpJSON(t, ts.Client(), "GET", ts.URL+"/v1/sessions/"+info.ID, nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: status %d", resp.StatusCode)
	}

	for _, probe := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := ts.Client().Get(ts.URL + probe)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", probe, resp.StatusCode)
		}
	}
}

func TestServeDeterministicAcrossWorkerCounts(t *testing.T) {
	mon, logs := newTestModel(t)
	mal := logs.Malicious
	const sessions = 4
	n := 3 * mon.Window()

	want := make([][]Verdict, sessions)
	for i := range want {
		want[i] = referenceVerdicts(t, mon, mal, mal.Events[i:i+n])
	}

	for _, workers := range []int{1, 8} {
		s := newTestServer(t, Config{Parallel: workers, TurnEvents: 7})
		ts := httptest.NewServer(s.Handler())
		got := make([][]Verdict, sessions)
		var wg sync.WaitGroup
		for i := 0; i < sessions; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				info := createSession(t, ts, mal)
				wire := EventSpecsOf(mal.Events[i : i+n])
				verdicts := []Verdict{}
				for j := 0; j < len(wire); j += 5 {
					end := j + 5
					if end > len(wire) {
						end = len(wire)
					}
					res := ingest(t, ts, info.ID, wire[j:end])
					verdicts = append(verdicts, res.Verdicts...)
				}
				got[i] = verdicts
			}(i)
		}
		wg.Wait()
		ts.Close()
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("workers=%d session %d: verdicts differ from reference (%d vs %d)",
					workers, i, len(got[i]), len(want[i]))
			}
		}
	}
}

func TestServeBackpressure(t *testing.T) {
	_, logs := newTestModel(t)
	mal := logs.Malicious
	s := newTestServer(t, Config{QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	info := createSession(t, ts, mal)
	wire := EventSpecsOf(mal.Events[:8]) // more events than the queue admits
	url := fmt.Sprintf("%s/v1/sessions/%s/events", ts.URL, info.ID)
	var apiErr apiError
	resp := httpJSON(t, ts.Client(), "POST", url, EventBatch{Events: wire}, &apiErr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversubscribed batch: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response carries no Retry-After header")
	}
	if !strings.Contains(apiErr.Error, "queue full") {
		t.Errorf("429 body %q does not explain the queue", apiErr.Error)
	}

	// A batch that fits still flows.
	if res := ingest(t, ts, info.ID, wire[:4]); res.Consumed != 4 {
		t.Fatalf("in-bounds batch consumed %d, want 4", res.Consumed)
	}
}

func TestServeShutdownSpoolsAndRestores(t *testing.T) {
	mon, logs := newTestModel(t)
	mal := logs.Malicious
	spool := t.TempDir()
	n := 4 * mon.Window()
	cut := mon.Window() + 3
	want := referenceVerdicts(t, mon, mal, mal.Events[:n])

	s1 := newTestServer(t, Config{SpoolDir: spool})
	ts1 := httptest.NewServer(s1.Handler())
	info := createSession(t, ts1, mal)
	res := ingest(t, ts1, info.ID, EventSpecsOf(mal.Events[:cut]))
	got := append([]Verdict{}, res.Verdicts...)

	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	if ids, err := core.SpooledSessions(spool); err != nil || len(ids) != 1 || ids[0] != info.ID {
		t.Fatalf("spool after shutdown: ids=%v err=%v, want [%s]", ids, err, info.ID)
	}

	// A second server over the same spool restores the session and the
	// combined verdict stream is identical to the uninterrupted run.
	s2 := newTestServer(t, Config{SpoolDir: spool})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var state SessionInfo
	resp := httpJSON(t, ts2.Client(), "GET", ts2.URL+"/v1/sessions/"+info.ID, nil, &state)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restored session not addressable: status %d", resp.StatusCode)
	}
	if state.Consumed != cut || state.Verdicts != len(got) {
		t.Fatalf("restored state %+v, want consumed=%d verdicts=%d", state, cut, len(got))
	}
	res = ingest(t, ts2, info.ID, EventSpecsOf(mal.Events[cut:n]))
	got = append(got, res.Verdicts...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored verdict stream differs from uninterrupted run (%d vs %d)", len(got), len(want))
	}
	if ids, _ := core.SpooledSessions(spool); len(ids) != 0 {
		t.Errorf("spool entries not consumed by restore: %v", ids)
	}
}

func TestServeEvictionAndLazyRestore(t *testing.T) {
	mon, logs := newTestModel(t)
	mal := logs.Malicious
	spool := t.TempDir()
	n := 3 * mon.Window()
	cut := mon.Window() + 1
	want := referenceVerdicts(t, mon, mal, mal.Events[:n])

	s := newTestServer(t, Config{SpoolDir: spool})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	info := createSession(t, ts, mal)
	res := ingest(t, ts, info.ID, EventSpecsOf(mal.Events[:cut]))
	got := append([]Verdict{}, res.Verdicts...)

	// Force the janitor's decision directly: everything is "idle" from
	// one hour in the future.
	s.evictIdle(time.Now().Add(time.Hour))
	s.sessMu.RLock()
	resident := len(s.sessions)
	s.sessMu.RUnlock()
	if resident != 0 {
		t.Fatalf("%d sessions resident after eviction, want 0", resident)
	}
	if ids, _ := core.SpooledSessions(spool); len(ids) != 1 {
		t.Fatalf("spool after eviction: %v, want one entry", ids)
	}

	// Next touch lazily restores and the stream continues seamlessly.
	res = ingest(t, ts, info.ID, EventSpecsOf(mal.Events[cut:n]))
	got = append(got, res.Verdicts...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-eviction verdicts differ from uninterrupted run (%d vs %d)", len(got), len(want))
	}
}

func TestServeRequestValidation(t *testing.T) {
	_, logs := newTestModel(t)
	mal := logs.Malicious
	s := newTestServer(t, Config{MaxBodyBytes: 1 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Unknown model.
	spec := SessionSpecOf(mal, "no-such-model")
	if resp := httpJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", spec, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown model: status %d, want 400", resp.StatusCode)
	}
	// Unknown module kind.
	bad := SessionSpecOf(mal, "")
	bad.Modules[0].Kind = "mystery"
	if resp := httpJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", bad, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad module kind: status %d, want 400", resp.StatusCode)
	}
	// Unknown event type.
	info := createSession(t, ts, mal)
	url := fmt.Sprintf("%s/v1/sessions/%s/events", ts.URL, info.ID)
	batch := EventBatch{Events: []EventSpec{{Type: "Nonsense"}}}
	if resp := httpJSON(t, ts.Client(), "POST", url, batch, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad event type: status %d, want 400", resp.StatusCode)
	}
	// Oversized body.
	big := EventBatch{Events: EventSpecsOf(mal.Events)}
	s.cfg.MaxBodyBytes = 64
	if resp := httpJSON(t, ts.Client(), "POST", url, big, nil); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
	s.cfg.MaxBodyBytes = 1 << 20
	// Unknown session.
	if resp := httpJSON(t, ts.Client(), "GET", ts.URL+"/v1/sessions/nope", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", resp.StatusCode)
	}
}

func TestWireEventRoundTrip(t *testing.T) {
	_, logs := newTestModel(t)
	mal := logs.Malicious
	spec := SessionSpecOf(mal, "")
	mm, err := spec.ModuleMap()
	if err != nil {
		t.Fatal(err)
	}
	if mm.AppName() != mal.App {
		t.Fatalf("round-tripped app %q, want %q", mm.AppName(), mal.App)
	}
	for i, es := range EventSpecsOf(mal.Events[:50]) {
		ev, err := es.Event(mm)
		if err != nil {
			t.Fatal(err)
		}
		orig := mal.Events[i]
		if ev.Type != orig.Type || ev.PID != orig.PID || ev.TID != orig.TID {
			t.Fatalf("event %d: %+v round-tripped to %+v", i, orig, ev)
		}
		if len(ev.Stack) != len(orig.Stack) {
			t.Fatalf("event %d: stack depth %d, want %d", i, len(ev.Stack), len(orig.Stack))
		}
		for j := range ev.Stack {
			if ev.Stack[j].Addr != orig.Stack[j].Addr ||
				ev.Stack[j].Module != orig.Stack[j].Module ||
				ev.Stack[j].Function != orig.Stack[j].Function {
				t.Fatalf("event %d frame %d: %+v vs %+v", i, j, ev.Stack[j], orig.Stack[j])
			}
		}
	}
}
