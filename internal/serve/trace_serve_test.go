package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/telemetry"
)

// TestTraceParentPropagation drives one traced ingest end to end: the
// injected traceparent must come back in the response header as a child
// span, land as an exemplar on the route's latency histogram, and stamp
// the flight-recorder entries for the request, the queue hand-off and
// the verdict summary.
func TestTraceParentPropagation(t *testing.T) {
	mon, logs := newTestModel(t)
	s := newTestServer(t, Config{Parallel: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	caller := telemetry.TraceContext{Trace: telemetry.NewTraceID(), Span: telemetry.NewSpanID()}
	traceHex := caller.Trace.String()

	info := createSession(t, ts, logs.Malicious)
	wire := EventSpecsOf(logs.Malicious.Events[:2*mon.Window()])

	blob, err := json.Marshal(EventBatch{Events: wire})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/sessions/"+info.ID+"/events", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", caller.TraceParent())
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}

	echoed, ok := telemetry.ParseTraceParent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("response traceparent %q unparseable", resp.Header.Get("traceparent"))
	}
	if echoed.Trace != caller.Trace {
		t.Fatalf("response trace %s, want caller's %s", echoed.Trace, caller.Trace)
	}
	if echoed.Span == caller.Span {
		t.Fatal("server reused the caller's span ID instead of minting a child")
	}

	// The route histogram holds the trace as an exemplar, filed under the
	// mux pattern (not the raw path with the session ID in it).
	route := "POST /v1/sessions/{id}/events"
	foundExemplar := false
	for _, m := range telemetry.Default().Snapshot() {
		if m.Name != "serve_http_seconds" || m.LabelValue != route {
			continue
		}
		for _, b := range m.Buckets {
			if b.Exemplar != nil && b.Exemplar.TraceID == traceHex {
				foundExemplar = true
			}
		}
	}
	if !foundExemplar {
		t.Fatalf("no serve_http_seconds{route=%q} exemplar carries trace %s", route, traceHex)
	}

	// The flight recorder links the HTTP hop, the queue hand-off and the
	// verdict summary under the same trace.
	kinds := map[string]bool{}
	for _, e := range telemetry.Flight().Snapshot() {
		if e.Trace == traceHex {
			kinds[e.Kind] = true
		}
	}
	for _, want := range []string{"http", "verdict"} {
		if !kinds[want] {
			t.Errorf("no %q flight entry carries trace %s (got %v)", want, traceHex, kinds)
		}
	}
}

// TestTracedMintsWhenHeaderAbsent: requests without a traceparent still
// get a valid trace minted and echoed back.
func TestTracedMintsWhenHeaderAbsent(t *testing.T) {
	_, logs := newTestModel(t)
	s := newTestServer(t, Config{Parallel: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := httpJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", SessionSpecOf(logs.Benign, ""), nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session: status %d", resp.StatusCode)
	}
	tc, ok := telemetry.ParseTraceParent(resp.Header.Get("traceparent"))
	if !ok || !tc.Valid() {
		t.Fatalf("minted traceparent %q invalid", resp.Header.Get("traceparent"))
	}

	// A malformed inbound header must not be echoed; a fresh trace is
	// minted instead.
	req, err := http.NewRequest("GET", ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "garbage")
	r2, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	tc2, ok := telemetry.ParseTraceParent(r2.Header.Get("traceparent"))
	if !ok || tc2.Trace == tc.Trace {
		t.Fatalf("malformed header handling wrong: %q", r2.Header.Get("traceparent"))
	}
}
