package serve

import (
	"net/http/httptest"
	"reflect"
	"testing"
)

// TestDriverParity proves the socket-free Driver observes exactly what a
// network client observes: same session info, same verdict stream, same
// counters — because both paths traverse the same Handler.
func TestDriverParity(t *testing.T) {
	srv := newTestServer(t, Config{})
	_, logs := newTestModel(t)
	drv := NewDriver(srv)

	spec := SessionSpecOf(logs.Benign, "")
	events := EventSpecsOf(logs.Benign.Events[:300])

	info, err := drv.CreateSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.App != logs.Benign.App {
		t.Fatalf("driver session info incomplete: %+v", info)
	}
	res, err := drv.Ingest(info.ID, EventBatch{Events: events})
	if err != nil {
		t.Fatal(err)
	}

	// The same workload over a real HTTP listener.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var netInfo SessionInfo
	httpJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", spec, &netInfo)
	var netRes IngestResult
	httpJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions/"+netInfo.ID+"/events", EventBatch{Events: events}, &netRes)

	if !reflect.DeepEqual(res, netRes) {
		t.Errorf("driver ingest result diverged from the network path:\ndriver: %+v\nnet:    %+v", res, netRes)
	}

	got, err := drv.Session(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Consumed != res.Consumed || got.Verdicts != len(res.Verdicts) {
		t.Errorf("session counters inconsistent: %+v vs ingest %+v", got, res)
	}
	if err := drv.DeleteSession(info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := drv.Session(info.ID); !IsStatus(err, 404) {
		t.Fatalf("deleted session fetch: got %v, want 404 DriverError", err)
	}
}

// TestDriverErrorMapping proves API failures surface as *DriverError
// with the real status code and message, matching the wire behaviour.
func TestDriverErrorMapping(t *testing.T) {
	srv := newTestServer(t, Config{})
	drv := NewDriver(srv)

	_, err := drv.Session("nope")
	if !IsStatus(err, 404) {
		t.Fatalf("unknown session: got %v, want 404", err)
	}
	de, ok := err.(*DriverError)
	if !ok || de.Msg == "" {
		t.Fatalf("error envelope not decoded: %#v", err)
	}

	_, err = drv.CreateSession(SessionSpec{Model: "no-such-model", App: "x.exe"})
	if !IsStatus(err, 400) {
		t.Fatalf("unknown model: got %v, want 400", err)
	}
	if IsStatus(nil, 404) || IsStatus(errNotADriverError, 404) {
		t.Fatal("IsStatus matched a non-DriverError")
	}
}

// errNotADriverError is a plain error for the IsStatus negative case.
var errNotADriverError = &notDriverError{}

type notDriverError struct{}

func (*notDriverError) Error() string { return "not a driver error" }
