package serve

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// statusWriter captures the response status so the tracing middleware
// can label its flight entries and latency observations with it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the underlying writer, so
// handlers behind the middleware keep Flush/Hijack and friends.
func (w *statusWriter) Unwrap() http.ResponseWriter {
	return w.ResponseWriter
}

// traced wraps the API mux with the request-tracing middleware: every
// request gets a TraceContext — adopted from an incoming traceparent
// header or freshly minted — threaded through the request context so
// spans, flight entries and exemplars downstream carry the same trace
// ID. The server's own span context is echoed back in the response's
// traceparent header, per-route latency lands in serve_http_seconds
// with the trace ID as the bucket exemplar, and the request completion
// is recorded in the flight recorder (kind "http").
func (s *Server) traced(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var tc telemetry.TraceContext
		if parent, ok := telemetry.ParseTraceParent(r.Header.Get("traceparent")); ok {
			tc = parent.Child()
		} else {
			tc = telemetry.TraceContext{Trace: telemetry.NewTraceID(), Span: telemetry.NewSpanID()}
		}
		ctx := telemetry.WithTraceContext(r.Context(), tc)
		w.Header().Set("traceparent", tc.TraceParent())

		// Resolve the mux pattern without dispatching, so the route label
		// is the registered template ("POST /v1/sessions/{id}/events"),
		// never a raw path that would explode label cardinality.
		route := r.URL.Path
		if _, pattern := s.mux.Handler(r); pattern != "" {
			route = pattern
		}

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		d := time.Since(start)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		mHTTPSeconds.With(route).ObserveTraced(d.Seconds(), tc.Trace.String())
		telemetry.RecordFlight(telemetry.FlightEntry{
			Kind:  "http",
			Name:  route,
			Trace: tc.Trace.String(),
			Dur:   d,
			Attrs: map[string]string{
				"method": r.Method,
				"status": strconv.Itoa(sw.status),
			},
		})
	})
}
