package serve

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/svm"
)

// newTestBundle returns the shared fixture's raw bundle bytes.
func newTestBundle(t *testing.T) []byte {
	t.Helper()
	newTestModel(t)
	return testBundleRaw
}

// Second distinct bundle (different hyperparameters, same window) so
// registry tests have a real challenger to shadow and promote.
var (
	altOnce sync.Once
	altErr  error
	altRaw  []byte
)

func altTestBundle(t *testing.T) []byte {
	t.Helper()
	_, logs := newTestModel(t)
	altOnce.Do(func() {
		td, err := core.BuildTrainingData(logs.Benign, logs.Mixed, core.Config{
			Seed:        7,
			FixedParams: &svm.Params{Lambda: 2, Kernel: svm.RBFKernel{Sigma2: 4}},
		})
		if err != nil {
			altErr = err
			return
		}
		clf, err := td.Train()
		if err != nil {
			altErr = err
			return
		}
		var buf bytes.Buffer
		if err := clf.Save(&buf); err != nil {
			altErr = err
			return
		}
		altRaw = buf.Bytes()
	})
	if altErr != nil {
		t.Fatal(altErr)
	}
	return altRaw
}

// bundleEnvelope mirrors core's on-disk classifier envelope by gob field
// names, so tests can corrupt sections without reaching into core.
type bundleEnvelope struct {
	Magic     string
	Version   int
	Window    int
	Lambda    float64
	Encoder   []byte
	Scaler    []byte
	Model     []byte
	HasPlatt  bool
	PlattA    float64
	PlattB    float64
	CallGraph []byte
}

func mutateBundle(t *testing.T, raw []byte, mutate func(*bundleEnvelope)) []byte {
	t.Helper()
	var env bundleEnvelope
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&env); err != nil {
		t.Fatal(err)
	}
	mutate(&env)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// writeBundle drops bundle bytes at a path for path-backed models.
func writeBundle(t *testing.T, path string, raw []byte) {
	t.Helper()
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestServeReloadAllOrNothing is the regression test for partial
// reloads: when any bundle fails to load, no model — not even a healthy
// one — may be swapped, and the error must name every failing model.
func TestServeReloadAllOrNothing(t *testing.T) {
	raw := newTestBundle(t)
	dir := t.TempDir()
	pa := filepath.Join(dir, "a.model")
	pb := filepath.Join(dir, "b.model")
	writeBundle(t, pa, raw)
	writeBundle(t, pb, raw)

	s := newTestServer(t, Config{
		Models:    map[string]string{"a": pa, "b": pb},
		Preloaded: map[string]*core.Monitor{},
	})
	monA0 := s.models["a"].monitor()
	monB0 := s.models["b"].monitor()

	// One corrupt bundle aborts the whole reload; the healthy model keeps
	// its previous monitor too.
	writeBundle(t, pb, []byte("not a model"))
	err := s.Reload()
	if err == nil {
		t.Fatal("reload with a corrupt bundle reported success")
	}
	if !strings.Contains(err.Error(), `"b"`) || !strings.Contains(err.Error(), pb) {
		t.Errorf("reload error %q does not name the failing model and path", err)
	}
	if s.models["a"].monitor() != monA0 {
		t.Error("healthy model was swapped during an aborted reload")
	}
	if s.models["b"].monitor() != monB0 {
		t.Error("failing model was swapped during an aborted reload")
	}

	// Both corrupt: the aggregate error names each failure.
	writeBundle(t, pa, []byte("also not a model"))
	err = s.Reload()
	if err == nil {
		t.Fatal("reload with two corrupt bundles reported success")
	}
	for _, want := range []string{`"a"`, `"b"`, pa, pb, "no models swapped"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregate reload error %q lacks %q", err, want)
		}
	}

	// Both healthy again: the reload succeeds and swaps both.
	writeBundle(t, pa, raw)
	writeBundle(t, pb, raw)
	if err := s.Reload(); err != nil {
		t.Fatalf("reload over healthy bundles: %v", err)
	}
	if s.models["a"].monitor() == monA0 || s.models["b"].monitor() == monB0 {
		t.Error("successful reload did not swap the monitors")
	}
}

// TestServeV1BundleMigrationError checks the serving half of the
// format-migration contract: pointing leaps-serve at a version-1 bundle
// whose statistics cannot be decoded fails with the migration
// instruction, not a generic load error.
func TestServeV1BundleMigrationError(t *testing.T) {
	raw := newTestBundle(t)
	v1 := mutateBundle(t, raw, func(e *bundleEnvelope) {
		e.Version = 1
		e.Model = []byte("corrupt")
		e.CallGraph = nil
	})
	path := filepath.Join(t.TempDir(), "v1.model")
	writeBundle(t, path, v1)

	_, err := NewServer(Config{Models: map[string]string{"default": path}})
	if err == nil {
		t.Fatal("version-1 corrupt bundle accepted by NewServer")
	}
	if !strings.Contains(err.Error(), "re-save or retrain") {
		t.Errorf("NewServer error %q lacks the migration instruction", err)
	}
}

// registryFixture publishes the champion and challenger bundles into a
// fresh store (champion auto-promoted) and returns both manifests.
func registryFixture(t *testing.T) (*registry.Store, registry.Manifest, registry.Manifest) {
	t.Helper()
	st, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	manA, err := st.Publish(bytes.NewReader(newTestBundle(t)), registry.TrainInfo{App: "vim.exe", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	manB, err := st.Publish(bytes.NewReader(altTestBundle(t)), registry.TrainInfo{App: "vim.exe", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return st, manA, manB
}

func TestServeModelsLifecycleAPI(t *testing.T) {
	mon, logs := newTestModel(t)
	st, manA, manB := registryFixture(t)
	s := newTestServer(t, Config{
		Registry:  st,
		Preloaded: map[string]*core.Monitor{},
		// An unreachable event floor so the ungated promotion attempt is
		// deterministically rejected.
		Gate: registry.Gate{MinEvents: 1 << 30},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var info ModelsInfo
	resp := httpJSON(t, ts.Client(), "GET", ts.URL+"/v1/models", nil, &info)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/models: status %d", resp.StatusCode)
	}
	if info.Model != "default" || info.Current != manA.ID || info.Loaded != manA.ID {
		t.Fatalf("models info %+v, want champion %s serving as default", info, manA.ID)
	}
	if len(info.Entries) != 2 || info.Shadow != nil {
		t.Fatalf("models info %+v, want 2 entries and no shadow", info)
	}

	// Shadowing the champion itself or an absent entry is rejected.
	if resp := httpJSON(t, ts.Client(), "POST", ts.URL+"/v1/models/shadow",
		map[string]string{"id": manA.ID}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("shadowing the champion: status %d, want 400", resp.StatusCode)
	}
	if resp := httpJSON(t, ts.Client(), "POST", ts.URL+"/v1/models/shadow",
		map[string]string{"id": "ffffffffffff"}, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("shadowing an absent entry: status %d, want 404", resp.StatusCode)
	}

	var shadow ShadowStatus
	resp = httpJSON(t, ts.Client(), "POST", ts.URL+"/v1/models/shadow",
		map[string]string{"id": manB.ID}, &shadow)
	if resp.StatusCode != http.StatusCreated || shadow.ChallengerID != manB.ID {
		t.Fatalf("starting shadow: status %d info %+v", resp.StatusCode, shadow)
	}
	// A second shadow cannot start while one runs.
	if resp := httpJSON(t, ts.Client(), "POST", ts.URL+"/v1/models/shadow",
		map[string]string{"id": manB.ID}, nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("double shadow start: status %d, want 409", resp.StatusCode)
	}

	// Serve traffic on the champion; the session rides model "default",
	// which is registry-backed, so batches mirror to the challenger.
	mal := logs.Malicious
	n := 3 * mon.Window()
	cut := mon.Window() + 5
	want := referenceVerdicts(t, mon, mal, mal.Events[:n])
	sess := createSession(t, ts, mal)
	res := ingest(t, ts, sess.ID, EventSpecsOf(mal.Events[:cut]))
	got := append([]Verdict{}, res.Verdicts...)

	if c := s.canary.Load(); c == nil {
		t.Fatal("no canary active after shadow start")
	} else {
		c.Sync()
		if st := c.Status(); st.Events != cut {
			t.Errorf("shadow replayed %d events, want %d", st.Events, cut)
		}
	}
	info = ModelsInfo{} // Unmarshal keeps stale fields the response omits
	resp = httpJSON(t, ts.Client(), "GET", ts.URL+"/v1/models", nil, &info)
	if resp.StatusCode != http.StatusOK || info.Shadow == nil || info.Shadow.ChallengerID != manB.ID {
		t.Fatalf("models info during shadow: status %d %+v", resp.StatusCode, info)
	}

	// The gate blocks promotion (event floor not met) with its reasons.
	var rejection struct {
		Error    string            `json:"error"`
		Decision registry.Decision `json:"decision"`
	}
	resp = httpJSON(t, ts.Client(), "POST", ts.URL+"/v1/models/promote",
		map[string]any{"id": manB.ID}, &rejection)
	if resp.StatusCode != http.StatusConflict || len(rejection.Decision.Reasons) == 0 {
		t.Fatalf("gated promote: status %d body %+v, want 409 with reasons", resp.StatusCode, rejection)
	}

	// Forced promotion bypasses the gate, repoints current, reloads.
	var tr registry.Transition
	resp = httpJSON(t, ts.Client(), "POST", ts.URL+"/v1/models/promote",
		map[string]any{"id": manB.ID, "force": true}, &tr)
	if resp.StatusCode != http.StatusOK || tr.From != manA.ID || tr.To != manB.ID {
		t.Fatalf("forced promote: status %d transition %+v", resp.StatusCode, tr)
	}
	info = ModelsInfo{} // Unmarshal keeps stale fields the response omits
	resp = httpJSON(t, ts.Client(), "GET", ts.URL+"/v1/models", nil, &info)
	if resp.StatusCode != http.StatusOK || info.Loaded != manB.ID || info.Current != manB.ID {
		t.Fatalf("models info after promote: %+v, want %s serving", info, manB.ID)
	}
	if info.Shadow != nil {
		t.Error("canary still active after its challenger was promoted")
	}

	// Verdict continuity: the pre-promotion session still scores with the
	// monitor it was created under.
	res = ingest(t, ts, sess.ID, EventSpecsOf(mal.Events[cut:n]))
	got = append(got, res.Verdicts...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("session verdicts changed across promotion (%d vs %d)", len(got), len(want))
	}

	// New sessions score with the promoted challenger.
	monB, err := core.LoadMonitor(bytes.NewReader(altTestBundle(t)))
	if err != nil {
		t.Fatal(err)
	}
	wantB := referenceVerdicts(t, monB, mal, mal.Events[:n])
	sessB := createSession(t, ts, mal)
	resB := ingest(t, ts, sessB.ID, EventSpecsOf(mal.Events[:n]))
	if !reflect.DeepEqual(resB.Verdicts, wantB) {
		t.Fatalf("post-promotion session does not score with the challenger (%d vs %d verdicts)",
			len(resB.Verdicts), len(wantB))
	}

	// Rollback with no explicit id returns to the previous champion.
	resp = httpJSON(t, ts.Client(), "POST", ts.URL+"/v1/models/rollback", nil, &tr)
	if resp.StatusCode != http.StatusOK || tr.To != manA.ID {
		t.Fatalf("rollback: status %d transition %+v, want return to %s", resp.StatusCode, tr, manA.ID)
	}
	info = ModelsInfo{} // Unmarshal keeps stale fields the response omits
	resp = httpJSON(t, ts.Client(), "GET", ts.URL+"/v1/models", nil, &info)
	if resp.StatusCode != http.StatusOK || info.Loaded != manA.ID {
		t.Fatalf("models info after rollback: %+v, want %s serving", info, manA.ID)
	}
	if len(info.History) == 0 {
		t.Error("rollback left no history record")
	}
}

// TestServeShadowDeterminism is the acceptance check that shadow
// evaluation never perturbs the serving path: the champion's verdict
// stream is byte-identical with a challenger attached and without one.
func TestServeShadowDeterminism(t *testing.T) {
	mon, logs := newTestModel(t)
	mal := logs.Malicious
	n := 4 * mon.Window()
	want := referenceVerdicts(t, mon, mal, mal.Events[:n])

	run := func(withShadow bool) []byte {
		st, _, manB := registryFixture(t)
		s := newTestServer(t, Config{
			Registry:   st,
			Preloaded:  map[string]*core.Monitor{},
			Parallel:   4,
			TurnEvents: 9,
		})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		if withShadow {
			resp := httpJSON(t, ts.Client(), "POST", ts.URL+"/v1/models/shadow",
				map[string]string{"id": manB.ID}, nil)
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("starting shadow: status %d", resp.StatusCode)
			}
		}
		sess := createSession(t, ts, mal)
		wire := EventSpecsOf(mal.Events[:n])
		verdicts := []Verdict{}
		for i := 0; i < len(wire); i += 13 {
			end := i + 13
			if end > len(wire) {
				end = len(wire)
			}
			res := ingest(t, ts, sess.ID, wire[i:end])
			verdicts = append(verdicts, res.Verdicts...)
		}
		if withShadow {
			c := s.canary.Load()
			if c == nil {
				t.Fatal("canary vanished mid-run")
			}
			c.Sync()
			cmp := c.Status()
			if cmp.Events != n || cmp.Diverged != 0 {
				t.Fatalf("shadow comparison %+v, want %d events and no divergence", cmp, n)
			}
		}
		if !reflect.DeepEqual(verdicts, want) {
			t.Fatalf("withShadow=%v: verdicts differ from reference (%d vs %d)",
				withShadow, len(verdicts), len(want))
		}
		blob, err := json.Marshal(verdicts)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}

	with := run(true)
	without := run(false)
	if !bytes.Equal(with, without) {
		t.Fatal("champion verdict stream differs with a shadow challenger attached")
	}
}
