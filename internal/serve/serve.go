// Package serve implements the online detection server behind the
// leaps-serve binary: a long-running process that loads one or more
// trained model bundles and scores many concurrent event streams over an
// HTTP/JSON API.
//
// Each stream is a session — a core.StreamDetector pinned to one model —
// with a bounded, event-counted ingest queue. Batches POSTed to a
// session are scored strictly in arrival order by at most one worker
// turn at a time, so the verdict stream is deterministic for any
// worker-pool size (the same contract the batch pipeline honours for
// Config.Parallel). Backpressure is explicit: when a batch would
// overflow the queue the request is rejected with 429 and a Retry-After
// hint rather than buffered without bound.
//
// Sessions survive restarts through the checkpoint spool: graceful
// shutdown checkpoints every live session to the spool directory, and
// startup restores them. Idle sessions are checkpointed and evicted from
// memory, then transparently restored on next access. Restores consume
// the spooled checkpoint, so a scored event is never re-scored.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/registry"
	"repro/internal/telemetry"
)

// Config parameterises a Server. The zero value of every limit selects a
// production-safe default; at least one model source is mandatory.
type Config struct {
	// Models maps model names to bundle paths, loaded at startup and
	// re-read on Reload. The name "default" is what sessions get when
	// their spec names no model.
	Models map[string]string
	// Preloaded maps model names to already-loaded monitors (tests,
	// embedding callers). Preloaded models are not hot-reloadable.
	Preloaded map[string]*core.Monitor
	// Registry connects the server to a model registry: the model named
	// RegistryModel is loaded from the registry's current entry and
	// managed over the /v1/models API (shadow evaluation, gated
	// promotion, rollback). Nil disables the lifecycle endpoints.
	Registry *registry.Store
	// RegistryModel names the registry-backed model (default "default",
	// so sessions that name no model ride the registry champion).
	RegistryModel string
	// Gate is the promotion policy for shadow evaluation; the zero value
	// selects the registry package's defaults.
	Gate registry.Gate
	// Autopilot exposes a retraining controller over the API (GET
	// /v1/autopilot, POST /v1/autopilot/{pause,resume}). Nil disables the
	// endpoints. The server never calls into it from the scoring path.
	Autopilot Autopilot
	// ShadowQueue caps queued shadow batches awaiting challenger replay
	// (default 256). A full queue drops batches — shadow evaluation
	// never blocks or backpressures the serving path.
	ShadowQueue int
	// SpoolDir is where shutdown and eviction checkpoint sessions.
	// Empty disables the spool: shutdown discards session state and
	// idle sessions are never evicted.
	SpoolDir string
	// MaxSessions caps resident sessions (default 1024).
	MaxSessions int
	// QueueDepth caps the queued events per session (default 8192).
	QueueDepth int
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// RequestTimeout bounds how long an ingest request waits for its
	// batch to be scored before giving up with 503 (default 30s). The
	// batch is still scored; only the waiting stops.
	RequestTimeout time.Duration
	// IdleTimeout is how long a session may go untouched before the
	// janitor evicts it to the spool (default 15m; requires SpoolDir).
	IdleTimeout time.Duration
	// EvictInterval is the janitor's scan period (default 1m).
	EvictInterval time.Duration
	// Parallel sizes the scoring worker pool (default GOMAXPROCS).
	// Verdicts are identical for any value; only throughput changes.
	Parallel int
	// TurnEvents caps the events one worker turn scores before the
	// session yields its worker for fairness (default 1024).
	TurnEvents int
	// ReplicaID names this server within a fleet. When set it is
	// reported as the owning replica in session info and stamped on
	// verdict flight-recorder entries, so handoff races are attributable
	// to a specific replica. Empty means "not part of a fleet".
	ReplicaID string
	// Logger receives operational logs (default slog.Default()).
	Logger *slog.Logger
}

// withDefaults fills unset limits.
func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8192
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 15 * time.Minute
	}
	if c.EvictInterval <= 0 {
		c.EvictInterval = time.Minute
	}
	if c.Parallel <= 0 {
		c.Parallel = runtime.GOMAXPROCS(0)
	}
	if c.RegistryModel == "" {
		c.RegistryModel = "default"
	}
	if c.ShadowQueue <= 0 {
		c.ShadowQueue = 256
	}
	if c.TurnEvents <= 0 {
		c.TurnEvents = 1024
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// model is one named bundle; mu guards the monitor pointer (and, for
// registry-backed models, the resolved bundle path and entry id) across
// hot reloads. Sessions capture the monitor's detector at creation, so a
// reload changes what new sessions score with, never live ones.
type model struct {
	name  string
	store *registry.Store // non-nil for the registry-backed model
	mu    sync.RWMutex
	path  string // empty for preloaded monitors; current bundle for registry models
	entry string // registry entry id currently loaded ("" otherwise)
	mon   *core.Monitor
}

func (m *model) monitor() *core.Monitor {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.mon
}

// snapshot returns the reload-guarded fields consistently.
func (m *model) snapshot() (path, entry string, mon *core.Monitor) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.path, m.entry, m.mon
}

// Server is the serving subsystem: models, sessions, the scoring worker
// pool and the HTTP API. Create with NewServer, expose Handler on a
// listener, and call Shutdown to checkpoint and stop.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	models map[string]*model // immutable key set after NewServer

	sessMu   sync.RWMutex
	sessions map[string]*session

	workCh      chan *session
	workers     sync.WaitGroup
	janitorStop chan struct{}
	janitorDone chan struct{}
	closing     atomic.Bool
	// draining marks a replica being removed from a fleet ring: readiness
	// fails, new sessions and imports are refused, but resident sessions
	// keep scoring until each is exported away (POST /v1/drain).
	draining atomic.Bool

	// reloadMu serialises Reload calls (SIGHUP races /v1/models writes).
	reloadMu sync.Mutex
	// trafficVerdicts/trafficMalicious count scored verdict windows since
	// process start, across all sessions — the autopilot's retrain
	// trigger reads them through TrafficStats.
	trafficVerdicts  atomic.Uint64
	trafficMalicious atomic.Uint64
	// canary is the active shadow evaluation, nil when none. The scoring
	// path reads it lock-free on every turn.
	canary atomic.Pointer[registry.Canary]
}

// NewServer loads the configured models, restores any spooled sessions,
// and starts the scoring workers and eviction janitor.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		models:      make(map[string]*model),
		sessions:    make(map[string]*session),
		workCh:      make(chan *session, cfg.MaxSessions),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	for name, path := range cfg.Models {
		mon, err := loadMonitorFile(path)
		if err != nil {
			return nil, fmt.Errorf("serve: model %q: %w", name, err)
		}
		s.models[name] = &model{name: name, path: path, mon: mon}
	}
	for name, mon := range cfg.Preloaded {
		if _, dup := s.models[name]; dup {
			return nil, fmt.Errorf("serve: model %q configured twice", name)
		}
		s.models[name] = &model{name: name, mon: mon}
	}
	if cfg.Registry != nil {
		name := cfg.RegistryModel
		if _, dup := s.models[name]; dup {
			return nil, fmt.Errorf("serve: model %q configured twice (registry and -model/preloaded)", name)
		}
		ptr, ok, err := cfg.Registry.Current()
		if err != nil {
			return nil, fmt.Errorf("serve: registry: %w", err)
		}
		if !ok {
			return nil, fmt.Errorf("serve: registry at %s has no current entry; publish a model first (leaps-train -registry)", cfg.Registry.Root())
		}
		path, err := cfg.Registry.BundlePath(ptr.ID)
		if err != nil {
			return nil, fmt.Errorf("serve: registry: %w", err)
		}
		mon, err := loadMonitorFile(path)
		if err != nil {
			return nil, fmt.Errorf("serve: registry entry %s: %w", ptr.ID, err)
		}
		s.models[name] = &model{name: name, store: cfg.Registry, path: path, entry: ptr.ID, mon: mon}
		cfg.Logger.Info("registry champion loaded", "model", name, "entry", ptr.ID, "degraded", mon.Degraded())
	}
	if len(s.models) == 0 {
		return nil, fmt.Errorf("serve: no models configured")
	}
	if err := s.restoreSpooled(); err != nil {
		return nil, err
	}
	s.buildMux()
	for i := 0; i < cfg.Parallel; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	go s.janitor()
	return s, nil
}

func loadMonitorFile(path string) (*core.Monitor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.LoadMonitor(f)
}

// Handler returns the server's HTTP API — the /v1 endpoints, health
// probes and telemetry introspection surface — wrapped in the tracing
// middleware, so every request carries a trace ID end to end.
func (s *Server) Handler() http.Handler { return s.traced(s.mux) }

// Reload re-reads every reloadable model — path-backed bundles from
// their configured paths, the registry-backed model from the registry's
// current entry — and swaps the set in atomically. The call is
// all-or-nothing: every bundle is staged first, and if any fails to load
// no model is swapped and the returned error (an errors.Join aggregate)
// names every failing model and path. Live sessions are unaffected
// either way; only sessions created after a successful reload see the
// new monitors.
func (s *Server) Reload() error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()

	type staged struct {
		m     *model
		path  string
		entry string
		mon   *core.Monitor
	}
	var stage []staged
	var errs []error
	for _, m := range s.models {
		switch {
		case m.store != nil:
			ptr, ok, err := m.store.Current()
			if err == nil && !ok {
				err = errors.New("registry has no current entry")
			}
			var path string
			if err == nil {
				path, err = m.store.BundlePath(ptr.ID)
			}
			var mon *core.Monitor
			if err == nil {
				mon, err = loadMonitorFile(path)
			}
			if err != nil {
				errs = append(errs, fmt.Errorf("model %q (registry %s): %w", m.name, m.store.Root(), err))
				continue
			}
			stage = append(stage, staged{m: m, path: path, entry: ptr.ID, mon: mon})
		case m.path != "":
			mon, err := loadMonitorFile(m.path)
			if err != nil {
				errs = append(errs, fmt.Errorf("model %q (%s): %w", m.name, m.path, err))
				continue
			}
			stage = append(stage, staged{m: m, path: m.path, mon: mon})
		}
	}
	if len(errs) > 0 {
		err := fmt.Errorf("serve: reload aborted; no models swapped: %w", errors.Join(errs...))
		s.cfg.Logger.Error("model reload aborted; keeping all previous models",
			"failed", len(errs), "error", err)
		return err
	}
	for _, st := range stage {
		st.m.mu.Lock()
		st.m.path, st.m.entry, st.m.mon = st.path, st.entry, st.mon
		st.m.mu.Unlock()
		s.cfg.Logger.Info("model reloaded",
			"model", st.m.name, "path", st.path, "degraded", st.mon.Degraded())
	}
	if len(stage) > 0 {
		mModelReloads.Inc()
	}
	return nil
}

// Shutdown drains every session queue (or discards it once ctx expires),
// stops the workers, and checkpoints all sessions to the spool. The
// HTTP listener must already be closed or draining — Shutdown makes the
// API refuse new work but cannot stop the listener itself.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.closing.Swap(true) {
		return nil
	}
	close(s.janitorStop)
	<-s.janitorDone

	s.sessMu.RLock()
	live := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		live = append(live, sess)
	}
	s.sessMu.RUnlock()
	for _, sess := range live {
		select {
		case <-ctx.Done():
			sess.close() // deadline passed: fail queued batches instead
		default:
			sess.quiesce()
		}
	}
	close(s.workCh)
	s.workers.Wait()
	if c := s.canary.Swap(nil); c != nil {
		c.Stop()
	}

	var firstErr error
	if s.cfg.SpoolDir != "" {
		for _, sess := range live {
			if err := s.spoolSession(sess); err != nil {
				s.cfg.Logger.Error("checkpoint spool failed", "session", sess.id, "error", err)
				if firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	s.sessMu.Lock()
	s.sessions = make(map[string]*session)
	s.sessMu.Unlock()
	mSessionsActive.Set(0)
	return firstErr
}

// worker pulls scheduled sessions and runs scoring turns.
func (s *Server) worker() {
	defer s.workers.Done()
	for sess := range s.workCh {
		s.runTurn(sess)
	}
}

// runTurn drains one session's queue in order, yielding the worker after
// TurnEvents events so a firehose session cannot starve the rest.
func (s *Server) runTurn(sess *session) {
	budget := s.cfg.TurnEvents
	for {
		b, ok := sess.pop()
		if !ok {
			return
		}
		mQueueWaitSeconds.ObserveTraced(time.Since(b.enq).Seconds(), b.trace)
		scoreStart := time.Now()
		rep := sess.score(b)
		mScoreSeconds.ObserveTraced(time.Since(scoreStart).Seconds(), b.trace)
		b.done <- rep
		if rep.err == nil && len(rep.verdicts) > 0 {
			var mal uint64
			for _, v := range rep.verdicts {
				if v.Malicious {
					mal++
				}
			}
			s.trafficVerdicts.Add(uint64(len(rep.verdicts)))
			s.trafficMalicious.Add(mal)
			attrs := map[string]string{
				"model":     sess.model,
				"verdicts":  strconv.Itoa(len(rep.verdicts)),
				"malicious": strconv.FormatUint(mal, 10),
			}
			if s.cfg.ReplicaID != "" {
				attrs["replica"] = s.cfg.ReplicaID
				attrs["ring_gen"] = strconv.FormatInt(sess.ringGen, 10)
			}
			telemetry.RecordFlight(telemetry.FlightEntry{
				Kind:  "verdict",
				Name:  sess.id,
				Trace: b.trace,
				Attrs: attrs,
			})
		}
		s.shadowOffer(sess, b, rep)
		if budget -= len(b.events); budget <= 0 {
			s.workCh <- sess // scheduled stays set; next worker continues
			return
		}
	}
}

// shadowOffer mirrors one scored batch to the active canary when the
// session rides the registry-backed model. The champion's verdicts are
// already final and delivered by the time it runs, and the offer itself
// is a non-blocking try-send, so shadow evaluation can never perturb the
// serving path's verdict stream.
func (s *Server) shadowOffer(sess *session, b *ingestBatch, rep ingestReply) {
	c := s.canary.Load()
	if c == nil || rep.err != nil || sess.model != s.cfg.RegistryModel {
		return
	}
	flags := make([]bool, len(rep.verdicts))
	for i, v := range rep.verdicts {
		flags[i] = v.Malicious
	}
	c.Offer(sess.id, sess.mm, b.events, flags)
	telemetry.RecordFlight(telemetry.FlightEntry{
		Kind:  "shadow",
		Name:  sess.id,
		Trace: b.trace,
		Attrs: map[string]string{"events": strconv.Itoa(len(b.events))},
	})
}

// janitor periodically checkpoints idle sessions to the spool and evicts
// them from memory.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	if s.cfg.SpoolDir == "" {
		<-s.janitorStop
		return
	}
	tick := time.NewTicker(s.cfg.EvictInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-tick.C:
			s.evictIdle(time.Now().Add(-s.cfg.IdleTimeout))
		}
	}
}

// evictIdle spools and drops every session untouched since the cutoff.
func (s *Server) evictIdle(cutoff time.Time) {
	s.sessMu.RLock()
	var idle []*session
	for _, sess := range s.sessions {
		if sess.idleSince(cutoff) {
			idle = append(idle, sess)
		}
	}
	s.sessMu.RUnlock()
	for _, sess := range idle {
		s.sessMu.Lock()
		if !sess.idleSince(cutoff) { // raced with fresh traffic
			s.sessMu.Unlock()
			continue
		}
		sess.mu.Lock()
		sess.closed = true
		sess.mu.Unlock()
		if err := s.spoolSession(sess); err != nil {
			// Keep the session live rather than lose its state.
			sess.mu.Lock()
			sess.closed = false
			sess.mu.Unlock()
			s.sessMu.Unlock()
			s.cfg.Logger.Error("eviction checkpoint failed; keeping session",
				"session", sess.id, "error", err)
			continue
		}
		delete(s.sessions, sess.id)
		s.sessMu.Unlock()
		mSessionsEvicted.Inc()
		mSessionsActive.Add(-1)
		s.cfg.Logger.Info("idle session evicted to spool", "session", sess.id)
	}
}

// spoolMeta is the JSON sidecar written next to a spooled checkpoint; it
// carries what the binary checkpoint cannot: the session's identity,
// model binding, module map and verdict tallies.
type spoolMeta struct {
	ID        string      `json:"id"`
	Model     string      `json:"model"`
	Spec      SessionSpec `json:"spec"`
	Created   time.Time   `json:"created"`
	Verdicts  int         `json:"verdicts"`
	Malicious int         `json:"malicious"`
}

// spoolSession writes the session's checkpoint and metadata sidecar. The
// caller must have quiesced the session (no queued work, no turns).
func (s *Server) spoolSession(sess *session) error {
	if err := faultinject.Step("serve/spool/checkpoint"); err != nil {
		return err
	}
	if err := core.WriteSpoolCheckpoint(s.cfg.SpoolDir, sess.id, sess.det); err != nil {
		return err
	}
	sess.mu.Lock()
	meta := spoolMeta{
		ID:        sess.id,
		Model:     sess.model,
		Spec:      sess.spec,
		Created:   sess.created,
		Verdicts:  sess.verdicts,
		Malicious: sess.malicious,
	}
	sess.mu.Unlock()
	blob, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.cfg.SpoolDir, "."+sess.id+".meta-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(s.cfg.SpoolDir, sess.id+".json"))
}

// restoreSpooled eagerly revives every spooled session at startup.
func (s *Server) restoreSpooled() error {
	if s.cfg.SpoolDir == "" {
		return nil
	}
	ids, err := core.SpooledSessions(s.cfg.SpoolDir)
	if err != nil {
		return fmt.Errorf("serve: scanning spool: %w", err)
	}
	for _, id := range ids {
		if len(s.sessions) >= s.cfg.MaxSessions {
			s.cfg.Logger.Warn("session limit reached; leaving remaining spool entries on disk",
				"restored", len(s.sessions))
			break
		}
		sess, err := s.restoreSession(id)
		if err != nil {
			s.cfg.Logger.Error("spooled session not restorable; leaving on disk",
				"session", id, "error", err)
			continue
		}
		s.sessions[sess.id] = sess
		mSessionsActive.Add(1)
		mSessionsRestored.Inc()
		s.cfg.Logger.Info("session restored from spool", "session", id, "model", sess.model)
	}
	return nil
}

// restoreSession revives one spooled session and consumes its spool
// entry. Callers hold whatever session-map locking they need.
func (s *Server) restoreSession(id string) (*session, error) {
	blob, err := os.ReadFile(filepath.Join(s.cfg.SpoolDir, id+".json"))
	if err != nil {
		return nil, fmt.Errorf("reading spool metadata: %w", err)
	}
	var meta spoolMeta
	if err := json.Unmarshal(blob, &meta); err != nil {
		return nil, fmt.Errorf("decoding spool metadata: %w", err)
	}
	m, ok := s.models[meta.Model]
	if !ok {
		return nil, fmt.Errorf("spooled session pinned to unknown model %q", meta.Model)
	}
	mm, err := meta.Spec.ModuleMap()
	if err != nil {
		return nil, fmt.Errorf("rebuilding module map: %w", err)
	}
	r, err := core.OpenSpoolCheckpoint(s.cfg.SpoolDir, id)
	if err != nil {
		return nil, err
	}
	mon := m.monitor()
	det, err := mon.RestoreStream(mm, r)
	r.Close()
	if err != nil {
		return nil, fmt.Errorf("restoring checkpoint: %w", err)
	}
	if err := core.RemoveSpoolCheckpoint(s.cfg.SpoolDir, id); err != nil {
		return nil, err
	}
	_ = os.Remove(filepath.Join(s.cfg.SpoolDir, id+".json"))
	now := time.Now()
	return &session{
		id:        id,
		model:     meta.Model,
		spec:      meta.Spec,
		det:       det,
		mm:        mm,
		window:    mon.Window(),
		degraded:  det.Degraded(),
		created:   meta.Created,
		lastUsed:  now,
		verdicts:  meta.Verdicts,
		malicious: meta.Malicious,
	}, nil
}

// newSessionID returns a fresh random session identifier.
func newSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("serve: reading random session id: %v", err))
	}
	return hex.EncodeToString(b[:])
}
