package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

// SessionInfo is the JSON body of session-creation responses and
// GET /v1/sessions/{id}: the session's binding plus live counters.
type SessionInfo struct {
	// ID addresses the session in subsequent requests.
	ID string `json:"id"`
	// Model is the model bundle the session scores with.
	Model string `json:"model"`
	// App is the monitored application's main image name.
	App string `json:"app"`
	// Window is the detection window length in events.
	Window int `json:"window"`
	// Degraded reports call-graph-fallback mode (no statistical model).
	Degraded bool `json:"degraded"`
	// Consumed and Skipped count events the detector has processed and
	// events it had to skip as unusable.
	Consumed int `json:"consumed"`
	Skipped  int `json:"skipped"`
	// Pending counts partial-window events buffered in the detector;
	// Queued counts events accepted but not yet scored.
	Pending int `json:"pending"`
	Queued  int `json:"queued"`
	// Verdicts and Malicious count scored windows and malicious ones.
	Verdicts  int `json:"verdicts"`
	Malicious int `json:"malicious"`
	// Replica is the owning replica's fleet ID and RingGeneration the
	// router ring generation stamped at creation or last handoff; both
	// are absent outside a fleet. Entry is the registry entry the
	// session's model was loaded from, absent for path/preloaded models.
	Replica        string `json:"replica,omitempty"`
	RingGeneration int64  `json:"ring_generation,omitempty"`
	Entry          string `json:"entry,omitempty"`
	// Created and LastUsed bound the session's lifetime.
	Created  time.Time `json:"created"`
	LastUsed time.Time `json:"last_used"`
	// Checkpoint is the base64 binary checkpoint of the detector,
	// present only when requested with ?checkpoint=1.
	Checkpoint string `json:"checkpoint,omitempty"`
}

// IngestResult is the JSON body answering an accepted event batch.
type IngestResult struct {
	// Consumed and Skipped count this batch's events by outcome.
	Consumed int `json:"consumed"`
	Skipped  int `json:"skipped"`
	// Verdicts are the windows this batch completed, in stream order.
	Verdicts []Verdict `json:"verdicts"`
}

// buildMux wires the API routes, health probes and telemetry surface.
func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	mux.HandleFunc("POST /v1/sessions/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/sessions/import", s.handleImport)
	mux.HandleFunc("POST /v1/sessions/{id}/export", s.handleExport)
	mux.HandleFunc("POST /v1/drain", s.handleDrainStart)
	mux.HandleFunc("DELETE /v1/drain", s.handleDrainStop)
	if s.cfg.Registry != nil {
		mux.HandleFunc("GET /v1/models", s.handleModels)
		mux.HandleFunc("POST /v1/models/shadow", s.handleShadowStart)
		mux.HandleFunc("DELETE /v1/models/shadow", s.handleShadowStop)
		mux.HandleFunc("POST /v1/models/promote", s.handlePromote)
		mux.HandleFunc("POST /v1/models/rollback", s.handleRollback)
	}
	if s.cfg.Autopilot != nil {
		mux.HandleFunc("GET /v1/autopilot", s.handleAutopilot)
		mux.HandleFunc("POST /v1/autopilot/pause", s.handleAutopilotPause)
		mux.HandleFunc("POST /v1/autopilot/resume", s.handleAutopilotResume)
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	telemetry.Register(mux)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			writeError(w, http.StatusNotFound, "no such endpoint")
			return
		}
		fmt.Fprintln(w, "leaps-serve endpoints:")
		fmt.Fprintln(w, "  POST   /v1/sessions")
		fmt.Fprintln(w, "  GET    /v1/sessions/{id}   (?checkpoint=1)")
		fmt.Fprintln(w, "  POST   /v1/sessions/{id}/events")
		fmt.Fprintln(w, "  POST   /v1/sessions/{id}/export")
		fmt.Fprintln(w, "  POST   /v1/sessions/import")
		fmt.Fprintln(w, "  DELETE /v1/sessions/{id}")
		fmt.Fprintln(w, "  POST   /v1/drain, DELETE /v1/drain")
		if s.cfg.Registry != nil {
			fmt.Fprintln(w, "  GET    /v1/models")
			fmt.Fprintln(w, "  POST   /v1/models/shadow")
			fmt.Fprintln(w, "  DELETE /v1/models/shadow")
			fmt.Fprintln(w, "  POST   /v1/models/promote")
			fmt.Fprintln(w, "  POST   /v1/models/rollback")
		}
		if s.cfg.Autopilot != nil {
			fmt.Fprintln(w, "  GET    /v1/autopilot")
			fmt.Fprintln(w, "  POST   /v1/autopilot/pause")
			fmt.Fprintln(w, "  POST   /v1/autopilot/resume")
		}
		fmt.Fprintln(w, "  GET    /healthz, /readyz")
		fmt.Fprintln(w, "  GET    /metrics, /spans, /debug/vars, /debug/pprof/")
	})
	s.mux = mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// decodeBody decodes a JSON request body under the configured size cap,
// translating oversize bodies to 413 and malformed ones to 400. It
// reports whether decoding succeeded; on failure the response is sent.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			mRejected.With("body_too_large").Inc()
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "decoding request body: %v", err)
		return false
	}
	return true
}

// resolveModel maps a session spec's model name to a loaded model,
// applying the default-model convention.
func (s *Server) resolveModel(name string) (*model, error) {
	if name == "" {
		if m, ok := s.models["default"]; ok {
			return m, nil
		}
		if len(s.models) == 1 {
			for _, m := range s.models {
				return m, nil
			}
		}
		return nil, fmt.Errorf("no model named and no default configured")
	}
	m, ok := s.models[name]
	if !ok {
		return nil, fmt.Errorf("unknown model %q", name)
	}
	return m, nil
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "replica draining")
		return
	}
	var spec SessionSpec
	if !s.decodeBody(w, r, &spec) {
		return
	}
	if spec.ID != "" {
		if err := validSessionID(spec.ID); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if s.sessionTaken(spec.ID) {
			writeError(w, http.StatusConflict, "session %q already exists", spec.ID)
			return
		}
	}
	m, err := s.resolveModel(spec.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	mm, err := spec.ModuleMap()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	_, entry, mon := m.snapshot()
	det, err := mon.Stream(mm)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "starting detector: %v", err)
		return
	}
	now := time.Now()
	sess := &session{
		id:       spec.ID,
		model:    m.name,
		spec:     spec,
		det:      det,
		mm:       mm,
		window:   mon.Window(),
		degraded: det.Degraded(),
		entry:    entry,
		ringGen:  ringGenFrom(r),
		created:  now,
		lastUsed: now,
	}
	if sess.id == "" {
		sess.id = newSessionID()
	}
	s.sessMu.Lock()
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.sessMu.Unlock()
		mRejected.With("session_limit").Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			"session limit %d reached", s.cfg.MaxSessions)
		return
	}
	if _, dup := s.sessions[sess.id]; dup {
		s.sessMu.Unlock()
		writeError(w, http.StatusConflict, "session %q already exists", sess.id)
		return
	}
	s.sessions[sess.id] = sess
	s.sessMu.Unlock()
	mSessionsActive.Add(1)
	mSessionsCreated.Inc()
	s.cfg.Logger.Info("session created",
		"session", sess.id, "model", sess.model, "app", spec.App, "degraded", sess.degraded)
	w.Header().Set("Location", "/v1/sessions/"+sess.id)
	writeJSON(w, http.StatusCreated, s.sessionInfo(sess, false))
}

// getSession finds a resident session, lazily restoring an evicted one
// from the spool.
func (s *Server) getSession(id string) (*session, error) {
	s.sessMu.RLock()
	sess, ok := s.sessions[id]
	s.sessMu.RUnlock()
	if ok {
		return sess, nil
	}
	if s.cfg.SpoolDir == "" || s.closing.Load() {
		return nil, fmt.Errorf("no session %q", id)
	}
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if sess, ok := s.sessions[id]; ok { // raced with another restorer
		return sess, nil
	}
	sess, err := s.restoreSession(id)
	if err != nil {
		return nil, fmt.Errorf("no session %q", id)
	}
	s.sessions[sess.id] = sess
	mSessionsActive.Add(1)
	mSessionsRestored.Inc()
	s.cfg.Logger.Info("session restored from spool on access", "session", id)
	return sess, nil
}

// sessionInfo snapshots a session for the API. With checkpoint set it
// embeds the detector's binary checkpoint in base64.
func (s *Server) sessionInfo(sess *session, checkpoint bool) SessionInfo {
	sess.mu.Lock()
	info := SessionInfo{
		ID:        sess.id,
		Model:     sess.model,
		App:       sess.spec.App,
		Window:    sess.window,
		Degraded:  sess.degraded,
		Queued:    sess.queued,
		Verdicts:  sess.verdicts,
		Malicious: sess.malicious,
		Created:   sess.created,
		LastUsed:  sess.lastUsed,
	}
	sess.mu.Unlock()
	info.Replica = s.cfg.ReplicaID
	info.RingGeneration = sess.ringGen
	info.Entry = sess.entry
	info.Consumed = sess.det.Consumed()
	info.Skipped = sess.det.Skipped()
	info.Pending = sess.det.Pending()
	if checkpoint {
		var buf bytes.Buffer
		if err := sess.det.Checkpoint(&buf); err == nil {
			info.Checkpoint = base64.StdEncoding.EncodeToString(buf.Bytes())
		}
	}
	return info
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	sess, err := s.getSession(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	withCkpt := r.URL.Query().Get("checkpoint") != ""
	writeJSON(w, http.StatusOK, s.sessionInfo(sess, withCkpt))
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	id := r.PathValue("id")
	sess, err := s.getSession(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	var batch EventBatch
	if !s.decodeBody(w, r, &batch) {
		return
	}
	events := make([]trace.Event, len(batch.Events))
	for i := range batch.Events {
		ev, err := batch.Events[i].Event(sess.mm)
		if err != nil {
			writeError(w, http.StatusBadRequest, "event %d: %v", i, err)
			return
		}
		events[i] = ev
	}
	if len(events) == 0 {
		writeJSON(w, http.StatusOK, IngestResult{Verdicts: []Verdict{}})
		return
	}
	b := &ingestBatch{
		events: events,
		enq:    time.Now(),
		trace:  telemetry.TraceIDFrom(r.Context()),
		done:   make(chan ingestReply, 1),
	}
	schedule, err := sess.enqueue(b, s.cfg.QueueDepth)
	if errors.Is(err, ErrSessionClosed) {
		// The session was evicted between lookup and enqueue; restore it
		// and retry once.
		if sess, err = s.getSession(id); err == nil {
			schedule, err = sess.enqueue(b, s.cfg.QueueDepth)
		}
	}
	switch {
	case errors.Is(err, ErrQueueFull):
		mRejected.With("queue_full").Inc()
		w.Header().Set("Retry-After", retryAfterHint(sess.Queued(), s.cfg.QueueDepth))
		writeError(w, http.StatusTooManyRequests,
			"session queue full (%d events queued, depth %d)", sess.Queued(), s.cfg.QueueDepth)
		return
	case errors.Is(err, ErrSessionClosed):
		writeError(w, http.StatusConflict, "session %s is closed", id)
		return
	case err != nil:
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if schedule {
		s.workCh <- sess
	}

	timeout := time.NewTimer(s.cfg.RequestTimeout)
	defer timeout.Stop()
	select {
	case rep := <-b.done:
		if rep.err != nil {
			writeError(w, http.StatusInternalServerError, "scoring batch: %v", rep.err)
			return
		}
		res := IngestResult{Consumed: rep.consumed, Skipped: rep.skipped, Verdicts: rep.verdicts}
		if res.Verdicts == nil {
			res.Verdicts = []Verdict{}
		}
		writeJSON(w, http.StatusOK, res)
	case <-timeout.C:
		mRejected.With("timeout").Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			"batch not scored within %s; it remains queued", s.cfg.RequestTimeout)
	case <-r.Context().Done():
		// Client went away; the batch still scores in order.
	}
}

// retryAfterHint scales a 429's Retry-After with how backed up the
// session is: a barely-full queue suggests retrying in a second, a queue
// at full depth suggests several, capped so misbehaving clients never
// park themselves for minutes on a stale hint.
func retryAfterHint(queued, depth int) string {
	secs := 1
	if depth > 0 && queued > 0 {
		secs += 4 * queued / depth
	}
	if secs > 30 {
		secs = 30
	}
	return strconv.Itoa(secs)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.sessMu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.sessMu.Unlock()
	if ok {
		sess.close()
		mSessionsActive.Add(-1)
	}
	removedSpool := false
	if s.cfg.SpoolDir != "" {
		if err := core.RemoveSpoolCheckpoint(s.cfg.SpoolDir, id); err == nil {
			removedSpool = true
			// The sidecar is garbage once the checkpoint is gone, but a
			// removal failure means the spool dir needs attention.
			meta := filepath.Join(s.cfg.SpoolDir, id+".json")
			if err := os.Remove(meta); err != nil && !os.IsNotExist(err) {
				s.cfg.Logger.Warn("removing spool metadata sidecar",
					"session", id, "path", meta, "error", err)
			}
		}
	}
	if !ok && !removedSpool {
		writeError(w, http.StatusNotFound, "no session %q", id)
		return
	}
	s.cfg.Logger.Info("session deleted", "session", id)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	s.sessMu.RLock()
	n := len(s.sessions)
	s.sessMu.RUnlock()
	models := make([]string, 0, len(s.models))
	for name := range s.models {
		models = append(models, name)
	}
	sort.Strings(models)
	writeJSON(w, http.StatusOK, map[string]any{
		"ready":    true,
		"sessions": n,
		"models":   models,
	})
}
