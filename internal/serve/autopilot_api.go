package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// Autopilot is the serving side's view of a retraining controller. The
// concrete implementation lives in internal/autopilot; the interface
// keeps serve free of that dependency (autopilot imports serve's types
// structurally, not the other way around).
type Autopilot interface {
	// Status snapshots the controller for GET /v1/autopilot.
	Status() any
	// Pause suspends cycle starts; in-flight work stops at the next
	// journaled transition. Idempotent.
	Pause(reason string) error
	// Resume lifts a pause, resets the circuit breaker and lets any
	// interrupted cycle continue. Idempotent.
	Resume() error
}

// TrafficStats reports the cumulative scored verdict windows (and how
// many were malicious) across all sessions since the process started.
// The autopilot's retrain trigger measures traffic deltas against it.
func (s *Server) TrafficStats() (verdicts, malicious uint64) {
	return s.trafficVerdicts.Load(), s.trafficMalicious.Load()
}

// pauseRequest optionally carries the operator's reason for pausing.
type pauseRequest struct {
	Reason string `json:"reason"`
}

func (s *Server) handleAutopilot(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.Autopilot.Status())
}

func (s *Server) handleAutopilotPause(w http.ResponseWriter, r *http.Request) {
	// The body is optional: an empty POST pauses without a reason.
	var req pauseRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "decoding request body: %v", err)
		return
	}
	if req.Reason == "" {
		req.Reason = "operator pause"
	}
	if err := s.cfg.Autopilot.Pause(req.Reason); err != nil {
		writeError(w, http.StatusInternalServerError, "pausing autopilot: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Autopilot.Status())
}

func (s *Server) handleAutopilotResume(w http.ResponseWriter, r *http.Request) {
	if err := s.cfg.Autopilot.Resume(); err != nil {
		writeError(w, http.StatusInternalServerError, "resuming autopilot: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Autopilot.Status())
}
