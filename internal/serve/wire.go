package serve

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// Wire format of the serving API: JSON shapes for module maps, events and
// verdicts. The shapes mirror the internal trace model closely enough
// that a client holding a parsed log (or a live logger's process
// metadata) can stream without understanding the binary .letl codec.

// SessionSpec is the body of POST /v1/sessions: the model to pin the
// session to and the monitored process's identity — its application name
// and module map, which the detector needs to partition stack walks.
type SessionSpec struct {
	// ID optionally requests a specific session identifier instead of a
	// server-assigned one, so a fleet router can place sessions by
	// consistent hash before they exist. IDs are restricted to
	// filename-safe characters (letters, digits, '.', '_', '-', leading
	// character alphanumeric, at most 64 bytes); a taken ID is refused
	// with 409. Empty keeps the server-assigned random ID.
	ID string `json:"id,omitempty"`
	// Model names the model bundle to score with; empty selects the
	// server's default model.
	Model string `json:"model,omitempty"`
	// App is the application's main image name (e.g. "vim.exe").
	App string `json:"app"`
	// Modules lists every image loaded in the monitored process.
	Modules []ModuleSpec `json:"modules"`
}

// ModuleSpec is one loaded image of the monitored process.
type ModuleSpec struct {
	// Name is the image name; Kind is "app", "sharedlib" or "kernel".
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Base and Size bound the image's address range [base, base+size).
	Base uint64 `json:"base"`
	Size uint64 `json:"size"`
	// Symbols locate the image's named functions, in any order.
	Symbols []SymbolSpec `json:"symbols,omitempty"`
}

// SymbolSpec is one named function at an absolute address.
type SymbolSpec struct {
	Name string `json:"name"`
	Addr uint64 `json:"addr"`
}

// EventSpec is one system event in an ingest batch. The stack walk is
// raw frame addresses; the server resolves them against the session's
// module map, exactly as the raw-log parser does.
type EventSpec struct {
	// Type is the canonical event-type name (e.g. "FileRead").
	Type string `json:"type"`
	// TimeNS is the capture timestamp in Unix nanoseconds (0 = unknown).
	TimeNS int64 `json:"time_ns,omitempty"`
	// PID and TID identify the emitting process and thread.
	PID int `json:"pid"`
	TID int `json:"tid"`
	// Stack is the captured call stack, outermost frame first.
	Stack []uint64 `json:"stack"`
}

// EventBatch is the body of POST /v1/sessions/{id}/events.
type EventBatch struct {
	// Events are applied in order; a batch is the unit of backpressure.
	Events []EventSpec `json:"events"`
}

// Verdict is one classified window, the wire form of core.Detection.
type Verdict struct {
	// FirstEvent and LastEvent bound the window (stream ordinals).
	FirstEvent int `json:"first_event"`
	LastEvent  int `json:"last_event"`
	// Score is the decision value; negative means malicious.
	Score float64 `json:"score"`
	// Probability is the calibrated probability the window is malicious.
	Probability float64 `json:"probability"`
	// Malicious is the verdict.
	Malicious bool `json:"malicious"`
}

// verdictOf converts a detection to its wire form.
func verdictOf(d core.Detection) Verdict {
	return Verdict{
		FirstEvent:  d.FirstEvent,
		LastEvent:   d.LastEvent,
		Score:       d.Score,
		Probability: d.Probability,
		Malicious:   d.Malicious,
	}
}

// moduleKinds maps wire kind names onto the trace model.
var moduleKinds = map[string]trace.ModuleKind{
	"app":       trace.ModuleApp,
	"sharedlib": trace.ModuleSharedLib,
	"kernel":    trace.ModuleKernel,
}

// ModuleMap materialises the spec's module map, validating ranges and
// overlaps through the trace constructors.
func (s *SessionSpec) ModuleMap() (*trace.ModuleMap, error) {
	if s.App == "" {
		return nil, fmt.Errorf("serve: session spec has no app name")
	}
	mods := make([]*trace.Module, 0, len(s.Modules))
	for _, ms := range s.Modules {
		kind, ok := moduleKinds[ms.Kind]
		if !ok {
			return nil, fmt.Errorf("serve: module %q has unknown kind %q (want app, sharedlib or kernel)", ms.Name, ms.Kind)
		}
		syms := make([]trace.Symbol, len(ms.Symbols))
		for i, sy := range ms.Symbols {
			syms[i] = trace.Symbol{Name: sy.Name, Addr: sy.Addr}
		}
		m, err := trace.NewModule(ms.Name, kind, ms.Base, ms.Size, syms)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		mods = append(mods, m)
	}
	mm, err := trace.NewModuleMap(s.App, mods)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return mm, nil
}

// Event materialises one wire event, resolving its stack against the
// session's module map.
func (e *EventSpec) Event(mm *trace.ModuleMap) (trace.Event, error) {
	typ, ok := trace.ParseEventType(e.Type)
	if !ok {
		return trace.Event{}, fmt.Errorf("serve: unknown event type %q", e.Type)
	}
	out := trace.Event{Type: typ, PID: e.PID, TID: e.TID}
	if e.TimeNS != 0 {
		out.Time = time.Unix(0, e.TimeNS)
	}
	if len(e.Stack) > 0 {
		stack := make(trace.StackWalk, len(e.Stack))
		for i, addr := range e.Stack {
			stack[i] = trace.Frame{Addr: addr}
		}
		out.Stack = mm.ResolveStack(stack)
	}
	return out, nil
}

// SessionSpecOf builds the wire spec describing a parsed log's process —
// what a client would POST to open a session for that process. Used by
// leaps-trace -serve-json and the test harness.
func SessionSpecOf(log *trace.Log, model string) SessionSpec {
	spec := SessionSpecOfModules(log.Modules, model)
	spec.App = log.App
	return spec
}

// SessionSpecOfModules builds the wire spec for a process described only
// by its module map — the session-creation body for callers that
// synthesise processes without a parsed log, such as the cluster load
// simulator's appsim-backed sessions.
func SessionSpecOfModules(mm *trace.ModuleMap, model string) SessionSpec {
	spec := SessionSpec{Model: model, App: mm.AppName()}
	for _, m := range mm.Modules() {
		ms := ModuleSpec{Name: m.Name, Kind: m.Kind.String(), Base: m.Base, Size: m.Size}
		for _, sy := range m.Symbols() {
			ms.Symbols = append(ms.Symbols, SymbolSpec{Name: sy.Name, Addr: sy.Addr})
		}
		spec.Modules = append(spec.Modules, ms)
	}
	return spec
}

// EventSpecsOf converts parsed events to their wire form.
func EventSpecsOf(events []trace.Event) []EventSpec {
	out := make([]EventSpec, len(events))
	for i, e := range events {
		es := EventSpec{Type: e.Type.String(), PID: e.PID, TID: e.TID}
		if !e.Time.IsZero() {
			es.TimeNS = e.Time.UnixNano()
		}
		es.Stack = e.Stack.Addrs()
		out[i] = es
	}
	return out
}
