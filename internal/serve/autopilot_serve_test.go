package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/autopilot"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/registry"
)

// apGate is the promotion policy the autopilot integration tests run
// under. The thresholds are calibrated to the shared test dataset: on
// mixed traffic the challenger agrees with the champion on every
// champion-benign window (TPR 1.0) and clears roughly a tenth of the
// champion-flagged ones (FPR ~0.11), so 0.5/0.5 passes with wide margin
// while still exercising the real gate arithmetic.
func apGate() registry.Gate {
	return registry.Gate{MinEvents: 200, MinTPR: 0.5, MaxFPR: 0.5}
}

func apQuietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// apFixture is one serve+autopilot deployment: a registry seeded with
// the champion, a spool for session continuity across restarts, and a
// journal directory the controller resumes from.
type apFixture struct {
	store    *registry.Store
	stateDir string
	spoolDir string
	champion registry.Manifest
	trainer  autopilot.Trainer
}

func newAPFixture(t *testing.T) *apFixture {
	t.Helper()
	st, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	man, err := st.Publish(bytes.NewReader(newTestBundle(t)), registry.TrainInfo{App: "vim.exe", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	candidate := altTestBundle(t)
	return &apFixture{
		store:    st,
		stateDir: t.TempDir(),
		spoolDir: t.TempDir(),
		champion: man,
		trainer: autopilot.TrainerFunc(func(ctx context.Context) ([]byte, registry.TrainInfo, error) {
			return candidate, registry.TrainInfo{App: "vim.exe", Seed: 9}, nil
		}),
	}
}

// controller builds a controller over the fixture's journal and binds it
// to the server. Timings are tightened for test speed; determinism does
// not depend on them.
func (fx *apFixture) controller(t *testing.T, s *Server) *autopilot.Controller {
	t.Helper()
	ctl, err := autopilot.New(autopilot.Config{
		Store:         fx.store,
		Trainer:       fx.trainer,
		Gate:          apGate(),
		StateDir:      fx.stateDir,
		TriggerEvents: 1,
		ShadowTimeout: 30 * time.Second,
		ShadowPoll:    2 * time.Millisecond,
		BackoffBase:   time.Millisecond,
		BackoffMax:    4 * time.Millisecond,
		Logger:        apQuietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctl.Stop)
	ctl.Bind(s)
	return ctl
}

func (fx *apFixture) server(t *testing.T, ap Autopilot) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, Config{
		Registry:  fx.store,
		Preloaded: map[string]*core.Monitor{},
		SpoolDir:  fx.spoolDir,
		Gate:      apGate(),
		Autopilot: ap,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// runCycleWithTraffic drives one controller cycle while a background
// session pumps mixed traffic through the server, feeding the shadow
// canary the evidence the gate needs. It returns the recovered crash if
// a fault-injection point fired mid-cycle.
func runCycleWithTraffic(t *testing.T, ts *httptest.Server, ctl *autopilot.Controller,
	wire []EventSpec) (res autopilot.Result, err error, crash *faultinject.CrashPanic) {
	t.Helper()
	_, logs := newTestModel(t)
	pump := createSession(t, ts, logs.Mixed)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		client := ts.Client()
		url := fmt.Sprintf("%s/v1/sessions/%s/events", ts.URL, pump.ID)
		for i := 0; ; i = (i + 10) % len(wire) {
			select {
			case <-stop:
				return
			default:
			}
			end := i + 10
			if end > len(wire) {
				end = len(wire)
			}
			blob, _ := json.Marshal(EventBatch{Events: wire[i:end]})
			// Failures are expected once the cycle crashes or the server
			// shuts down; the pump only exists to generate evidence.
			if resp, err := client.Post(url, "application/json", bytes.NewReader(blob)); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	defer func() { close(stop); <-done }()
	func() {
		defer func() { crash = faultinject.Recover(recover()) }()
		res, err = ctl.RunCycle()
	}()
	return res, err, crash
}

// apOutcome is everything a scenario run observes that must be identical
// between a crash/resume run and an uninterrupted one.
type apOutcome struct {
	Pre      []Verdict // pinned session, before the cycle
	Post     []Verdict // pinned session, after promotion (pre-promote crashes only)
	Fresh    []Verdict // fresh post-promotion session
	Promoted string
	Current  string
}

// runAutopilotScenario serves traffic, runs one retraining cycle —
// optionally killed at crashPoint and resumed in a "new process" (new
// server restored from the spool, new controller over the same journal)
// — and returns the externally observable outcome.
//
// pinned reports whether the registry pointer had not yet moved at the
// crash point, so the spooled compare session restores onto the original
// champion and its verdict stream must continue byte-identically. Once
// the pointer has moved (crashes at/after promotion), a restarted server
// deliberately loads the new champion, so continuity of pre-restart
// sessions is not part of the contract.
func runAutopilotScenario(t *testing.T, crashPoint string, pinned bool) apOutcome {
	t.Helper()
	t.Cleanup(faultinject.Reset)
	mon, logs := newTestModel(t)
	mal := logs.Malicious
	n := 4 * mon.Window()
	cut := 2*mon.Window() + 5
	mixedWire := EventSpecsOf(logs.Mixed.Events[:40*mon.Window()])

	fx := newAPFixture(t)
	s, ts := fx.server(t, nil)
	sess := createSession(t, ts, mal)
	out := apOutcome{Pre: ingest(t, ts, sess.ID, EventSpecsOf(mal.Events[:cut])).Verdicts}

	ctl := fx.controller(t, s)
	if crashPoint != "" {
		faultinject.ArmCrash(crashPoint)
		_, _, crash := runCycleWithTraffic(t, ts, ctl, mixedWire)
		if crash == nil || crash.Point != crashPoint {
			t.Fatalf("recovered crash %+v, want %s", crash, crashPoint)
		}
		faultinject.Reset()
		// "Process death": stop the controller, checkpoint every session
		// to the spool, and bring up a fresh server and controller.
		ctl.Stop()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown after crash: %v", err)
		}
		cancel()
		ts.Close()
		s, ts = fx.server(t, nil)
		ctl = fx.controller(t, s)
		if st := ctl.Snapshot(); !st.Resuming {
			t.Fatal("restarted controller sees no interrupted cycle")
		}
	}
	res, err, crash := runCycleWithTraffic(t, ts, ctl, mixedWire)
	if crash != nil {
		t.Fatalf("unexpected crash at %s", crash.Point)
	}
	if err != nil {
		t.Fatalf("cycle: %v", err)
	}
	if res.Outcome != autopilot.OutcomePromoted || res.Cycle != 1 {
		t.Fatalf("cycle result %+v, want cycle 1 promoted", res)
	}
	out.Promoted = res.Entry

	if pinned {
		out.Post = ingest(t, ts, sess.ID, EventSpecsOf(mal.Events[cut:n])).Verdicts
	}
	fresh := createSession(t, ts, mal)
	out.Fresh = ingest(t, ts, fresh.ID, EventSpecsOf(mal.Events[:n])).Verdicts

	ptr, ok, err := fx.store.Current()
	if err != nil || !ok {
		t.Fatalf("current pointer: ok=%v err=%v", ok, err)
	}
	out.Current = ptr.ID
	if out.Current == fx.champion.ID {
		t.Fatal("cycle promoted but the champion still serves")
	}
	return out
}

// TestServeAutopilotCrashMatrixByteIdenticalVerdicts is the end-to-end
// acceptance check: a retraining cycle killed at representative crash
// points — mid-publish, mid-shadow, mid-promotion — and resumed in a
// fresh process converges to the same promoted model and byte-identical
// serving verdicts as a run that was never interrupted.
func TestServeAutopilotCrashMatrixByteIdenticalVerdicts(t *testing.T) {
	mon, logs := newTestModel(t)
	base := runAutopilotScenario(t, "", true)

	// Anchor the baseline itself: the pinned session's full stream is the
	// original champion's reference verdicts, the fresh session's is the
	// promoted challenger's.
	n := 4 * mon.Window()
	wantPinned := referenceVerdicts(t, mon, logs.Malicious, logs.Malicious.Events[:n])
	if got := append(append([]Verdict{}, base.Pre...), base.Post...); !reflect.DeepEqual(got, wantPinned) {
		t.Fatalf("baseline pinned stream diverges from champion reference (%d vs %d verdicts)",
			len(got), len(wantPinned))
	}
	monB, err := core.LoadMonitor(bytes.NewReader(altTestBundle(t)))
	if err != nil {
		t.Fatal(err)
	}
	wantFresh := referenceVerdicts(t, monB, logs.Malicious, logs.Malicious.Events[:n])
	if !reflect.DeepEqual(base.Fresh, wantFresh) {
		t.Fatalf("baseline fresh stream diverges from challenger reference (%d vs %d verdicts)",
			len(base.Fresh), len(wantFresh))
	}
	baseBlob, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}

	points := []struct {
		point  string
		pinned bool
	}{
		{point: "registry/publish/manifest", pinned: true},
		{point: "autopilot/journal/published", pinned: true},
		{point: "autopilot/journal/shadow-started", pinned: true},
		{point: "autopilot/journal/evaluated", pinned: true},
		{point: "autopilot/mid-promotion", pinned: false},
		{point: "autopilot/journal/cycle-done", pinned: false},
	}
	for _, tc := range points {
		t.Run(tc.point, func(t *testing.T) {
			got := runAutopilotScenario(t, tc.point, tc.pinned)
			if got.Promoted != base.Promoted || got.Current != base.Current {
				t.Fatalf("converged to %s (current %s), baseline %s (current %s)",
					got.Promoted, got.Current, base.Promoted, base.Current)
			}
			if !tc.pinned {
				// Continuity of pre-crash sessions is out of contract once
				// the pointer moved; compare the deterministic streams.
				got.Post = base.Post
			}
			blob, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, baseBlob) {
				t.Errorf("crash at %s: outcome differs from uninterrupted run\n got: %s\nwant: %s",
					tc.point, blob, baseBlob)
			}
		})
	}
}

// TestServeAutopilotBreakerKeepsChampionServing trips the circuit
// breaker with a persistently failing trainer and checks the failure
// domain: retraining stops, the API reports the open breaker, and the
// serving path keeps answering with the champion's exact verdicts.
func TestServeAutopilotBreakerKeepsChampionServing(t *testing.T) {
	mon, logs := newTestModel(t)
	fx := newAPFixture(t)
	fx.trainer = autopilot.TrainerFunc(func(ctx context.Context) ([]byte, registry.TrainInfo, error) {
		return nil, registry.TrainInfo{}, fmt.Errorf("training data unavailable")
	})

	ctl, err := autopilot.New(autopilot.Config{
		Store:            fx.store,
		Trainer:          fx.trainer,
		Gate:             apGate(),
		StateDir:         fx.stateDir,
		TriggerEvents:    1,
		StageRetries:     -1, // no retries: each cycle fails fast
		BackoffBase:      time.Millisecond,
		BackoffMax:       2 * time.Millisecond,
		BreakerThreshold: 2,
		Logger:           apQuietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctl.Stop)
	s, ts := fx.server(t, ctl)
	ctl.Bind(s)

	for i := 0; i < 2; i++ {
		if res, err := ctl.RunCycle(); err == nil || res.Outcome != autopilot.OutcomeFailed {
			t.Fatalf("cycle %d: %+v err=%v, want failed", i, res, err)
		}
	}
	if _, err := ctl.RunCycle(); err != autopilot.ErrBreakerOpen {
		t.Fatalf("post-trip cycle error = %v, want ErrBreakerOpen", err)
	}

	var st autopilot.Status
	resp := httpJSON(t, ts.Client(), "GET", ts.URL+"/v1/autopilot", nil, &st)
	if resp.StatusCode != http.StatusOK || !st.BreakerOpen || st.Phase != "breaker-open" {
		t.Fatalf("GET /v1/autopilot: status %d %+v, want open breaker", resp.StatusCode, st)
	}
	if st.ConsecutiveFailures != 2 || st.Cycles.Failed != 2 {
		t.Errorf("status %+v, want 2 consecutive failures", st)
	}

	// The serving path is unaffected: champion verdicts, exact.
	mal := logs.Malicious
	n := 2 * mon.Window()
	sess := createSession(t, ts, mal)
	got := ingest(t, ts, sess.ID, EventSpecsOf(mal.Events[:n])).Verdicts
	if want := referenceVerdicts(t, mon, mal, mal.Events[:n]); !reflect.DeepEqual(got, want) {
		t.Fatal("serving verdicts changed while the breaker is open")
	}
	if ptr, ok, _ := fx.store.Current(); !ok || ptr.ID != fx.champion.ID {
		t.Errorf("current entry %+v, want the champion %s untouched", ptr, fx.champion.ID)
	}

	// Resume over the API closes the breaker.
	st = autopilot.Status{}
	resp = httpJSON(t, ts.Client(), "POST", ts.URL+"/v1/autopilot/resume", nil, &st)
	if resp.StatusCode != http.StatusOK || st.BreakerOpen || st.ConsecutiveFailures != 0 {
		t.Fatalf("POST resume: status %d %+v, want closed breaker", resp.StatusCode, st)
	}
}

// TestServeAutopilotPauseResumeAPI drives the operator pause lifecycle
// over HTTP and checks it gates cycle admission.
func TestServeAutopilotPauseResumeAPI(t *testing.T) {
	fx := newAPFixture(t)
	ctl, err := autopilot.New(autopilot.Config{
		Store:    fx.store,
		Trainer:  fx.trainer,
		Gate:     apGate(),
		StateDir: fx.stateDir,
		Logger:   apQuietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctl.Stop)
	s, ts := fx.server(t, ctl)
	ctl.Bind(s)

	var st autopilot.Status
	resp := httpJSON(t, ts.Client(), "GET", ts.URL+"/v1/autopilot", nil, &st)
	if resp.StatusCode != http.StatusOK || st.Paused || st.Phase != "idle" {
		t.Fatalf("GET /v1/autopilot: status %d %+v, want idle", resp.StatusCode, st)
	}

	st = autopilot.Status{}
	resp = httpJSON(t, ts.Client(), "POST", ts.URL+"/v1/autopilot/pause",
		map[string]string{"reason": "maintenance window"}, &st)
	if resp.StatusCode != http.StatusOK || !st.Paused || st.PauseReason != "maintenance window" {
		t.Fatalf("POST pause: status %d %+v", resp.StatusCode, st)
	}
	if _, err := ctl.RunCycle(); err != autopilot.ErrPaused {
		t.Fatalf("paused cycle error = %v, want ErrPaused", err)
	}

	st = autopilot.Status{}
	resp = httpJSON(t, ts.Client(), "POST", ts.URL+"/v1/autopilot/resume", nil, &st)
	if resp.StatusCode != http.StatusOK || st.Paused {
		t.Fatalf("POST resume: status %d %+v", resp.StatusCode, st)
	}
}

// TestRetryAfterHint pins the adaptive 429 backoff hint's shape.
func TestRetryAfterHint(t *testing.T) {
	cases := []struct {
		queued, depth int
		want          string
	}{
		{0, 8192, "1"},    // empty queue: retry soon
		{2048, 8192, "2"}, // quarter full
		{4096, 8192, "3"},
		{8192, 8192, "5"}, // at depth: back off harder
		{100, 0, "1"},     // unknown depth: legacy hint
	}
	for _, tc := range cases {
		if got := retryAfterHint(tc.queued, tc.depth); got != tc.want {
			t.Errorf("retryAfterHint(%d, %d) = %q, want %q", tc.queued, tc.depth, got, tc.want)
		}
	}
}
