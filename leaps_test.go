package leaps

import (
	"bytes"
	"testing"
)

func TestTrainAndDetectFacade(t *testing.T) {
	logs, err := GenerateDataset("vim_reverse_tcp", 1)
	if err != nil {
		t.Fatal(err)
	}
	det, err := Train(logs.Benign, logs.Mixed,
		WithSeed(1), WithFixedParams(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if det.SupportVectors() == 0 {
		t.Error("no support vectors")
	}
	if det.BenignCFG().NumNodes() == 0 || det.MixedCFG().NumNodes() == 0 {
		t.Error("empty CFGs")
	}
	// Benignity of the first mixed event is a probability.
	if b := det.EventBenignity(0); b < 0 || b > 1 {
		t.Errorf("EventBenignity(0) = %v", b)
	}

	dets, err := det.Detect(logs.Malicious)
	if err != nil {
		t.Fatal(err)
	}
	var mal int
	for _, d := range dets {
		if d.Malicious {
			mal++
		}
	}
	if frac := float64(mal) / float64(len(dets)); frac < 0.6 {
		t.Errorf("malicious detection rate = %.2f", frac)
	}
	if _, err := det.Detect(nil); err == nil {
		t.Error("Detect(nil) succeeded")
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil); err == nil {
		t.Error("Train(nil, nil) succeeded")
	}
	logs, err := GenerateDataset("vim_reverse_tcp", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(logs.Benign, nil); err == nil {
		t.Error("Train without mixed log succeeded")
	}
	// Invalid option values surface as errors.
	if _, err := Train(logs.Benign, logs.Mixed, WithSampleFraction(3)); err == nil {
		t.Error("invalid sample fraction accepted")
	}
}

func TestEvaluateFacade(t *testing.T) {
	logs, err := GenerateDataset("putty_reverse_tcp_online", 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(logs.Benign, logs.Mixed, logs.Malicious,
		WithSeed(3), WithFixedParams(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.WSVM.ACC <= res.SVM.ACC {
		t.Errorf("WSVM %.3f <= SVM %.3f", res.WSVM.ACC, res.SVM.ACC)
	}
	multi, err := EvaluateRuns(logs.Benign, logs.Mixed, logs.Malicious, 2,
		WithSeed(3), WithFixedParams(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if multi.WSVM.ACC <= 0.5 {
		t.Errorf("averaged WSVM ACC = %v", multi.WSVM.ACC)
	}
}

func TestDatasetNames(t *testing.T) {
	names := DatasetNames()
	if len(names) != 21 {
		t.Fatalf("DatasetNames() = %d entries", len(names))
	}
	if _, err := GenerateDataset("not_a_dataset", 1); err == nil {
		t.Error("GenerateDataset(not_a_dataset) succeeded")
	}
}

func TestRawLogRoundTripFacade(t *testing.T) {
	logs, err := GenerateDataset("vim_reverse_https", 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRawLog(&buf, logs.Benign, logs.Malicious); err != nil {
		t.Fatal(err)
	}
	got, err := ParseRawLog(bytes.NewReader(buf.Bytes()), "vim.exe")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != logs.Benign.Len() {
		t.Errorf("round trip lost events: %d vs %d", got.Len(), logs.Benign.Len())
	}
	// Ambiguous parse without app name over a two-process file fails.
	if _, err := ParseRawLog(bytes.NewReader(buf.Bytes()), ""); err == nil {
		t.Error("ambiguous ParseRawLog succeeded")
	}
	// Single-process file parses without an app name.
	buf.Reset()
	if err := WriteRawLog(&buf, logs.Malicious); err != nil {
		t.Fatal(err)
	}
	single, err := ParseRawLog(&buf, "")
	if err != nil {
		t.Fatal(err)
	}
	if single.App != "reverse_tcp" && single.App != "reverse_https" {
		t.Errorf("single parse app = %q", single.App)
	}
}

func TestWithoutDensityEstimateOption(t *testing.T) {
	logs, err := GenerateDataset("vim_reverse_tcp", 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(logs.Benign, logs.Mixed,
		WithSeed(5), WithFixedParams(8, 2), WithoutDensityEstimate(), WithWindow(5)); err != nil {
		t.Fatalf("training with options failed: %v", err)
	}
}

func TestStreamFacade(t *testing.T) {
	logs, err := GenerateDataset("vim_reverse_tcp", 6)
	if err != nil {
		t.Fatal(err)
	}
	det, err := Train(logs.Benign, logs.Mixed, WithSeed(6), WithFixedParams(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	stream, err := det.Stream(logs.Malicious.Modules)
	if err != nil {
		t.Fatal(err)
	}
	var hits int
	for _, e := range logs.Malicious.Events[:100] {
		d, err := stream.Feed(e)
		if err != nil {
			t.Fatal(err)
		}
		if d != nil {
			hits++
			if d.Probability < 0 || d.Probability > 1 {
				t.Fatalf("Probability = %v", d.Probability)
			}
		}
	}
	if hits != 10 {
		t.Errorf("100 events produced %d windows, want 10", hits)
	}
}

func TestAttackEntryPointsFacade(t *testing.T) {
	logs, err := GenerateDataset("vim_reverse_tcp", 7)
	if err != nil {
		t.Fatal(err)
	}
	det, err := Train(logs.Benign, logs.Mixed, WithSeed(7), WithFixedParams(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	eps := det.AttackEntryPoints()
	if len(eps) == 0 {
		t.Fatal("no entry points for a trojaned process")
	}
	if eps[0].Events[0] != 0 {
		t.Errorf("earliest entry at event %d, want the detour preamble (0)", eps[0].Events[0])
	}
}

func TestEvaluateUniversalFacade(t *testing.T) {
	var pairs []LogPair
	var malicious []*Log
	for i, name := range []string{"vim_reverse_tcp", "putty_reverse_tcp"} {
		logs, err := GenerateDataset(name, int64(30+i))
		if err != nil {
			t.Fatal(err)
		}
		pairs = append(pairs, LogPair{Benign: logs.Benign, Mixed: logs.Mixed})
		malicious = append(malicious, logs.Malicious)
	}
	perApp, pooled, err := EvaluateUniversal(pairs, malicious, WithSeed(30), WithFixedParams(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(perApp) != 2 || pooled.ACC < 0.6 {
		t.Errorf("universal: perApp=%d pooled ACC=%v", len(perApp), pooled.ACC)
	}
}

func TestDetectorSaveLoadFacade(t *testing.T) {
	logs, err := GenerateDataset("vim_reverse_https", 8)
	if err != nil {
		t.Fatal(err)
	}
	det, err := Train(logs.Benign, logs.Mixed, WithSeed(8), WithFixedParams(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDetector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Loaded detectors classify identically but expose no training
	// artifacts.
	a, err := det.Detect(logs.Malicious)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Detect(logs.Malicious)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || a[0] != b[0] {
		t.Error("loaded detector behaves differently")
	}
	if loaded.BenignCFG() != nil || loaded.MixedCFG() != nil {
		t.Error("loaded detector exposes CFGs")
	}
	if got := loaded.EventBenignity(0); got != 0.5 {
		t.Errorf("loaded EventBenignity = %v, want 0.5 default", got)
	}
	if eps := loaded.AttackEntryPoints(); eps != nil {
		t.Errorf("loaded AttackEntryPoints = %v, want nil", eps)
	}
	if _, err := LoadDetector(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage model accepted")
	}
}

func TestGenerateDatasetWithPayloadShare(t *testing.T) {
	low, err := GenerateDatasetWithPayloadShare("vim_reverse_tcp", 9, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	high, err := GenerateDatasetWithPayloadShare("vim_reverse_tcp", 9, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	count := func(l *Log) (payload int) {
		for _, e := range l.Events {
			if e.TID == 9 {
				payload++
			}
		}
		return payload
	}
	if count(low.Mixed) >= count(high.Mixed) {
		t.Error("payload share parameter has no effect")
	}
	if _, err := GenerateDatasetWithPayloadShare("vim_reverse_tcp", 9, 0); err == nil {
		t.Error("share 0 accepted")
	}
	if _, err := GenerateDatasetWithPayloadShare("vim_reverse_tcp", 9, 1.5); err == nil {
		t.Error("share > 1 accepted")
	}
	if _, err := GenerateDatasetWithPayloadShare("nope", 9, 0.5); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestTrainWithAlignedCFGsFacade(t *testing.T) {
	logs, err := GenerateDataset("vim_reverse_tcp", 10)
	if err != nil {
		t.Fatal(err)
	}
	det, err := Train(logs.Benign, logs.Mixed,
		WithSeed(10), WithFixedParams(8, 2), WithAlignedCFGs())
	if err != nil {
		t.Fatal(err)
	}
	if det.SupportVectors() == 0 {
		t.Error("aligned training produced no model")
	}
}
