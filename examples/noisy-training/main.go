// Noisy-training demonstration: the paper's central claim is that mixed
// training logs — benign and malicious events interleaved, all labeled
// "malicious" — bias a plain SVM's boundary, and that CFG-derived weights
// repair it. This example sweeps the mixed log's payload activity share:
// the lower it is, the noisier the negative labels become, and the wider
// the WSVM-over-SVM gap should grow.
//
//	go run ./examples/noisy-training
package main

import (
	"fmt"
	"os"

	leaps "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "noisy-training:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("winscp + reverse TCP shell; varying the payload's share of mixed-log activity")
	fmt.Println()
	fmt.Println("payload share   SVM ACC   WSVM ACC   gap")
	fmt.Println("-------------   -------   --------   ------")
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8} {
		// GenerateDataset fixes the share at the paper's setting, so use
		// the evaluation entry point with regenerated logs per share.
		logs, err := generateWithShare("winscp_reverse_tcp", frac)
		if err != nil {
			return err
		}
		res, err := leaps.EvaluateRuns(logs.Benign, logs.Mixed, logs.Malicious, 3,
			leaps.WithSeed(23))
		if err != nil {
			return err
		}
		fmt.Printf("%12.0f%%   %7.3f   %8.3f   %+.3f\n",
			100*frac, res.SVM.ACC, res.WSVM.ACC, res.WSVM.ACC-res.SVM.ACC)
	}
	fmt.Println()
	fmt.Println("Low payload share = mostly-benign mixed logs = noisy negative labels:")
	fmt.Println("the plain SVM degrades while the CFG-weighted SVM holds.")
	return nil
}

// generateWithShare regenerates a dataset with a custom payload fraction.
func generateWithShare(name string, frac float64) (*leaps.DatasetLogs, error) {
	logs, err := leaps.GenerateDatasetWithPayloadShare(name, 23, frac)
	if err != nil {
		return nil, err
	}
	return logs, nil
}
