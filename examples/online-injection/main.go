// Online injection walkthrough (the paper's Case Study III): an attacker
// exploits a running SSH client, allocates memory in its address space,
// writes a reverse HTTPS backdoor there and starts it on a remote thread.
// The payload's stack frames resolve to no loaded module — the signature
// the CFG weighting turns into high-confidence training labels.
//
// The example also shows the raw-log round trip: the mixed log is written
// to the binary event-trace format and parsed back before training, the
// way a production deployment would consume collected .letl files.
//
//	go run ./examples/online-injection
package main

import (
	"bytes"
	"fmt"
	"os"

	leaps "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "online-injection:", err)
		os.Exit(1)
	}
}

func run() error {
	logs, err := leaps.GenerateDataset("putty_reverse_https_online", 11)
	if err != nil {
		return err
	}

	// Round-trip the collected logs through the raw binary format.
	var buf bytes.Buffer
	if err := leaps.WriteRawLog(&buf, logs.Benign, logs.Mixed); err != nil {
		return err
	}
	fmt.Printf("raw event-trace log: %d bytes for %d events\n",
		buf.Len(), logs.Benign.Len()+logs.Mixed.Len())

	// Injected code runs outside every module: count unresolved frames.
	var unresolved, frames int
	for _, e := range logs.Mixed.Events {
		for _, fr := range e.Stack {
			frames++
			if !fr.Resolved() {
				unresolved++
			}
		}
	}
	fmt.Printf("mixed log: %d of %d frames resolve to no module (injected payload)\n\n",
		unresolved, frames)

	det, err := leaps.Train(logs.Benign, logs.Mixed,
		leaps.WithSeed(11), leaps.WithFixedParams(8, 2))
	if err != nil {
		return err
	}

	// Persist the detector and reload it, as a monitoring agent would.
	var model bytes.Buffer
	if err := det.Save(&model); err != nil {
		return err
	}
	loaded, err := leaps.LoadDetector(&model)
	if err != nil {
		return err
	}

	dets, err := loaded.Detect(logs.Malicious)
	if err != nil {
		return err
	}
	flagged := 0
	for _, d := range dets {
		if d.Malicious {
			flagged++
		}
	}
	fmt.Printf("reloaded detector flags %d/%d pure-malicious windows\n", flagged, len(dets))

	res, err := leaps.EvaluateRuns(logs.Benign, logs.Mixed, logs.Malicious, 3,
		leaps.WithSeed(11))
	if err != nil {
		return err
	}
	fmt.Println("\n-- evaluation (averaged over 3 data selections) --")
	fmt.Printf("CGraph  %v\n", res.CGraph)
	fmt.Printf("SVM     %v\n", res.SVM)
	fmt.Printf("WSVM    %v   <- LEAPS\n", res.WSVM)
	return nil
}
