// Trojaned editor walkthrough (offline infection, the paper's Figure 4 /
// Case Study scenario): a text editor's binary has a reverse TCP shell
// embedded in an appended section. The example inspects every training
// artifact on the way to detection — the inferred CFGs, their structural
// difference, and the CFG-guided benignity weights — then evaluates all
// three models.
//
//	go run ./examples/trojaned-editor
package main

import (
	"fmt"
	"os"

	leaps "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trojaned-editor:", err)
		os.Exit(1)
	}
}

func run() error {
	logs, err := leaps.GenerateDataset("vim_reverse_tcp", 7)
	if err != nil {
		return err
	}

	det, err := leaps.Train(logs.Benign, logs.Mixed,
		leaps.WithSeed(7), leaps.WithFixedParams(8, 2))
	if err != nil {
		return err
	}

	// The Figure 4 phenomenon: the mixed CFG contains the benign CFG's
	// structure plus a payload region the benign CFG lacks.
	benign, mixed := det.BenignCFG(), det.MixedCFG()
	fmt.Println("-- control flow graphs inferred from stack walks --")
	fmt.Printf("benign CFG: %3d nodes %3d edges\n", benign.NumNodes(), benign.NumEdges())
	fmt.Printf("mixed CFG:  %3d nodes %3d edges\n", mixed.NumNodes(), mixed.NumEdges())
	extra := 0
	for _, n := range mixed.Nodes() {
		if !benign.HasNode(n) {
			extra++
		}
	}
	fmt.Printf("nodes only in the mixed CFG (payload + unseen benign): %d\n\n", extra)

	// Algorithm 2's weights: events on the payload thread score near 0
	// benignity; host-application events score near 1.
	fmt.Println("-- CFG-guided benignity of the first mixed-log events --")
	for seq := 0; seq < 8; seq++ {
		e := logs.Mixed.Events[seq]
		fmt.Printf("event %2d  tid=%d  type=%-13v benignity=%.2f\n",
			seq, e.TID, e.Type, det.EventBenignity(seq))
	}
	fmt.Println()

	// Backtrack the attack's entry point (§II-A): the control transfer
	// where benign code first handed execution to the payload — here the
	// trojan's detour hook.
	eps := det.AttackEntryPoints()
	fmt.Println("-- backtracked attack entry points --")
	for i, ep := range eps {
		if i == 3 {
			fmt.Printf("... and %d more\n", len(eps)-3)
			break
		}
		fmt.Printf("0x%x -> 0x%x, first observed at event %d\n",
			ep.Edge.From, ep.Edge.To, ep.Events[0])
	}
	fmt.Println()

	// Full §V evaluation: call-graph baseline vs plain SVM vs WSVM.
	res, err := leaps.EvaluateRuns(logs.Benign, logs.Mixed, logs.Malicious, 3,
		leaps.WithSeed(7))
	if err != nil {
		return err
	}
	fmt.Println("-- evaluation (averaged over 3 data selections) --")
	fmt.Printf("CGraph  %v\n", res.CGraph)
	fmt.Printf("SVM     %v\n", res.SVM)
	fmt.Printf("WSVM    %v   <- LEAPS\n", res.WSVM)
	return nil
}
