// Quickstart: train a LEAPS detector on one dataset and classify both a
// pure-malicious log and a held-out benign log.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	leaps "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// Synthesise the paper's vim + reverse-TCP-shell trojan dataset: a
	// clean vim log, a log of the trojaned vim (benign and malicious
	// events interleaved), and the recompiled payload on its own.
	logs, err := leaps.GenerateDataset("vim_reverse_tcp", 42)
	if err != nil {
		return err
	}
	fmt.Printf("dataset: benign %d events, mixed %d events, malicious %d events\n",
		logs.Benign.Len(), logs.Mixed.Len(), logs.Malicious.Len())

	// Training phase: stack partitioning, feature clustering, CFG
	// inference, weight assessment, weighted SVM. Fixed λ/σ² keeps the
	// example fast; drop WithFixedParams for the paper's grid search.
	det, err := leaps.Train(logs.Benign, logs.Mixed,
		leaps.WithSeed(42), leaps.WithFixedParams(8, 2))
	if err != nil {
		return err
	}
	fmt.Printf("trained: %d support vectors; benign CFG %d nodes, mixed CFG %d nodes\n",
		det.SupportVectors(), det.BenignCFG().NumNodes(), det.MixedCFG().NumNodes())

	// Testing phase on the pure-malicious ground truth.
	dets, err := det.Detect(logs.Malicious)
	if err != nil {
		return err
	}
	flagged := 0
	for _, d := range dets {
		if d.Malicious {
			flagged++
		}
	}
	fmt.Printf("malicious log: %d/%d windows flagged malicious\n", flagged, len(dets))

	// And on the clean log: the false-alarm side.
	dets, err = det.Detect(logs.Benign)
	if err != nil {
		return err
	}
	flagged = 0
	for _, d := range dets {
		if d.Malicious {
			flagged++
		}
	}
	fmt.Printf("benign log:    %d/%d windows flagged malicious\n", flagged, len(dets))
	return nil
}
