// Universal monitor: the paper's §II-B2 deployment shape. One classifier
// is trained across several applications' benign/mixed logs, then applied
// as a streaming monitor to a process it must judge event by event —
// including an application/payload combination whose infected form it
// never saw.
//
//	go run ./examples/universal-monitor
package main

import (
	"fmt"
	"os"

	leaps "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "universal-monitor:", err)
		os.Exit(1)
	}
}

func run() error {
	// Train one model over three applications' material.
	trainSets := []string{"winscp_reverse_tcp", "vim_codeinject", "notepad++_reverse_https"}
	var pairs []leaps.LogPair
	var malicious []*leaps.Log
	for i, name := range trainSets {
		logs, err := leaps.GenerateDataset(name, int64(50+i))
		if err != nil {
			return err
		}
		pairs = append(pairs, leaps.LogPair{Benign: logs.Benign, Mixed: logs.Mixed})
		malicious = append(malicious, logs.Malicious)
	}
	perApp, pooled, err := leaps.EvaluateUniversal(pairs, malicious,
		leaps.WithSeed(50), leaps.WithFixedParams(8, 2))
	if err != nil {
		return err
	}
	fmt.Println("-- universal classifier across three applications --")
	for i, name := range trainSets {
		fmt.Printf("%-28s ACC=%.3f\n", name, perApp[i].ACC)
	}
	fmt.Printf("%-28s ACC=%.3f\n\n", "pooled", pooled.ACC)

	// For live monitoring, train a dedicated detector for the process we
	// watch, then stream events into it one at a time as a collector
	// would deliver them.
	logs, err := leaps.GenerateDataset("putty_reverse_tcp_online", 51)
	if err != nil {
		return err
	}
	det, err := leaps.Train(logs.Benign, logs.Mixed,
		leaps.WithSeed(51), leaps.WithFixedParams(8, 2))
	if err != nil {
		return err
	}
	stream, err := det.Stream(logs.Malicious.Modules)
	if err != nil {
		return err
	}
	fmt.Println("-- streaming over a live malicious event feed --")
	shown, flagged, windows := 0, 0, 0
	for _, e := range logs.Malicious.Events {
		d, err := stream.Feed(e)
		if err != nil {
			return err
		}
		if d == nil {
			continue
		}
		windows++
		if d.Malicious {
			flagged++
		}
		if shown < 5 {
			shown++
			verdict := "benign"
			if d.Malicious {
				verdict = "MALICIOUS"
			}
			fmt.Printf("events %4d-%4d  score %+.3f  P(mal)=%.2f  %s\n",
				d.FirstEvent, d.LastEvent, d.Score, d.Probability, verdict)
		}
	}
	fmt.Printf("... %d/%d windows flagged malicious\n", flagged, windows)
	return nil
}
