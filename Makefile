GO ?= go

.PHONY: build vet test race fuzz-smoke verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz runs of the raw-log parser, seeded with fault-injected
# corpora — the CI smoke budget, not a deep campaign.
fuzz-smoke:
	$(GO) test ./internal/etl -run='^$$' -fuzz=FuzzParseStrict -fuzztime=10s
	$(GO) test ./internal/etl -run='^$$' -fuzz=FuzzParseLenient -fuzztime=10s

verify: build vet test race fuzz-smoke
