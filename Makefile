GO ?= go

.PHONY: build fmt-check vet test race fuzz-smoke bench bench-compare determinism verify verify-telemetry serve-smoke registry-smoke autopilot-smoke obs-smoke sim-smoke fleet-smoke doc-lint

build:
	$(GO) build ./...

# Fails when any tracked Go file is not gofmt-clean; prints the offenders.
fmt-check:
	@out=$$(gofmt -l ./cmd ./internal); \
	if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz runs of the raw-log parser, seeded with fault-injected
# corpora — the CI smoke budget, not a deep campaign.
fuzz-smoke:
	$(GO) test ./internal/etl -run='^$$' -fuzz=FuzzParseStrict -fuzztime=10s
	$(GO) test ./internal/etl -run='^$$' -fuzz=FuzzParseLenient -fuzztime=10s
	$(GO) test ./internal/etl -run='^$$' -fuzz=FuzzParseBytesCrossCheck -fuzztime=10s

# Measures the pipeline hot paths (parse, featurize, artifacts,
# select-train, train, gridsearch, detect) and writes
# BENCH_baseline.json, then drives the in-process serving workload and
# writes per-endpoint/per-stage p50/p95/p99 latency to BENCH_serve.json,
# then runs the canonical leaps-sim scenarios and writes their
# deterministic throughput/latency/checksum rows to BENCH_sim.json.
# Regenerating the committed baselines resets the regression gates, so
# it must be an explicit decision: the target refuses to run unless
# BENCH_REBASELINE=1 is set. Use bench-compare to measure against the
# committed numbers.
bench:
	@if [ "$(BENCH_REBASELINE)" != "1" ]; then \
		echo "bench: refusing to overwrite the committed baselines."; \
		echo "bench: rerun as 'make bench BENCH_REBASELINE=1' to rebaseline,"; \
		echo "bench: or 'make bench-compare' to measure against them."; \
		exit 1; \
	fi
	$(GO) run ./cmd/leaps-bench -perf-baseline BENCH_baseline.json -serve-baseline BENCH_serve.json -sim-baseline BENCH_sim.json

# Reruns both benchmark suites and fails on >20% regressions (ns/op and
# allocs/op for the pipeline, p95 latency for serving) against the
# committed baselines. Timings are warn-only in verify — absolute
# numbers from the committed baselines' machine don't transfer to
# arbitrary CI hosts — but the allocs/op gate stays hard everywhere:
# allocation counts are deterministic.
bench-compare:
	./scripts/bench-compare.sh

# Proves parallelism-invariance: EvaluateRuns and GridSearch produce
# identical results for any worker count, under the race detector —
# including the shared kernel-row cache and the pooled/batch hot paths,
# which must match their allocating reference implementations bit for
# bit.
determinism:
	$(GO) test -race -run 'TestEvaluateRunsParallelDeterminism|TestEvaluateRunsBuildsArtifactsOnce|TestGridSearchParallel|TestSharedCrossValidateMatchesUncached|TestGridSearchMatchesUncachedSweep|TestRowCacheConcurrent' ./internal/core ./internal/svm

# End-to-end smoke test of the -debug-addr introspection endpoints:
# generates data, trains, then scrapes /metrics, /spans and pprof from a
# live leaps-detect run.
verify-telemetry:
	./scripts/verify-telemetry.sh

# End-to-end smoke test of leaps-serve: boots the server against a
# generated dataset, drives one session over HTTP with curl, and asserts
# verdicts, SIGTERM checkpointing, restore-identical scoring and 429
# backpressure.
serve-smoke:
	./scripts/serve-smoke.sh

# End-to-end smoke test of the model registry lifecycle: publishes two
# trained seeds, shadow-evaluates the challenger against live traffic,
# and walks gated/forced promotion and rollback over /v1/models,
# asserting shadow non-perturbation and pinned-session continuity.
registry-smoke:
	./scripts/registry-smoke.sh

# End-to-end smoke test of the retraining autopilot: drives traffic past
# the retrain trigger, force-crashes the server mid-cycle with
# LEAPS_CRASHPOINT (asserting the faultinject exit code), and requires
# the restarted server to resume from the journal and converge on a
# gated promotion with reference-identical verdicts.
autopilot-smoke:
	./scripts/autopilot-smoke.sh

# End-to-end smoke test of the observability layer: injects a W3C
# traceparent over HTTP and asserts the same trace ID in the response
# header, a /metrics exemplar (lint-clean per scripts/metricslint) and
# the flight-recorder dumps produced by a forced circuit-breaker trip,
# SIGQUIT and GET /debug/flightrecorder.
obs-smoke:
	./scripts/obs-smoke.sh

# End-to-end smoke test of the deterministic cluster load simulator:
# same seed twice must be byte-identical (report and event log), a
# different seed must diverge, and the committed BENCH_sim.json must
# match exactly on counts and verdict checksums.
sim-smoke:
	./scripts/sim-smoke.sh

# End-to-end smoke test of the fleet layer: three registry-replicated
# leaps-serve replicas behind leaps-router over real sockets, asserting
# ring placement, byte-identical forwarded verdicts, checkpoint handoff
# across a drain/rejoin, and promotion propagation through registry
# sync.
fleet-smoke:
	./scripts/fleet-smoke.sh

# Godoc gate: package comments everywhere under internal/ and cmd/, and
# doc comments on every exported identifier in internal/serve,
# internal/registry, internal/telemetry and internal/sim.
doc-lint:
	./scripts/doc-lint.sh

verify: build fmt-check vet test race determinism fuzz-smoke doc-lint verify-telemetry serve-smoke registry-smoke autopilot-smoke obs-smoke sim-smoke fleet-smoke
	./scripts/bench-compare.sh -w
