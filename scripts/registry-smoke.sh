#!/bin/sh
# End-to-end smoke test of the model registry lifecycle: trains two
# seeds into a registry, serves the champion, shadow-evaluates the
# challenger against live traffic, and walks promotion and rollback
# over the /v1/models API. Asserts that
#
#   - leaps-train -registry publishes every seed and the first becomes
#     the serving champion,
#   - a session scored while a shadow evaluation runs is byte-identical
#     to a champion-only reference server (shadow never perturbs),
#   - promotion without shadow evidence is refused, and the gate
#     rejects on insufficient evidence with the failed conditions,
#   - forced promotion swaps new sessions to the challenger while live
#     sessions keep their pinned model (verdict continuity),
#   - rollback returns new sessions to the previous champion.
set -eu

workdir=$(mktemp -d)
champ_pid=""
chall_pid=""
reg_pid=""
cleanup() {
	for pid in "$champ_pid" "$chall_pid" "$reg_pid"; do
		[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	done
	for pid in "$champ_pid" "$chall_pid" "$reg_pid"; do
		[ -n "$pid" ] && wait "$pid" 2>/dev/null || true
	done
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

say() { printf 'registry-smoke: %s\n' "$*"; }
fail() {
	say "FAIL: $*"
	exit 1
}

say "building CLIs into $workdir"
go build -o "$workdir" ./cmd/leaps-trace ./cmd/leaps-train ./cmd/leaps-serve

say "generating dataset with serve wire files"
"$workdir/leaps-trace" -dataset vim_reverse_tcp -out "$workdir" -seed 1 -serve-json -quiet

say "training seeds 1 and 2 and publishing both into the registry"
"$workdir/leaps-train" \
	-benign "$workdir/vim_reverse_tcp_benign.letl" \
	-mixed "$workdir/vim_reverse_tcp_mixed.letl" \
	-model "$workdir/leaps.model" \
	-lambda 8 -sigma2 2 -seeds "1, 2" \
	-registry "$workdir/registry" -quiet -telemetry-out none

session_json="$workdir/vim_reverse_tcp_malicious.session.json"
batch_a="$workdir/vim_reverse_tcp_malicious.events.json"
batch_b="$workdir/vim_reverse_tcp_benign.events.json"

# start_server <logfile> <args...>: boots leaps-serve in the background
# and sets $started_pid / $started_addr (runs in the main shell so the
# pid survives; don't call it in a command substitution).
start_server() {
	log="$1"
	shift
	"$workdir/leaps-serve" "$@" 2>"$log" &
	started_pid=$!
	started_addr=""
	for _ in $(seq 1 100); do
		started_addr=$(sed -n 's/.*addr=\([0-9.]*:[0-9]*\).*/\1/p' "$log" | head -n1)
		[ -n "$started_addr" ] && break
		kill -0 "$started_pid" 2>/dev/null || fail "leaps-serve exited early: $(cat "$log")"
		sleep 0.1
	done
	[ -n "$started_addr" ] || fail "no listen address logged in $log"
}

# open_session <addr>: creates a session for the malicious process.
open_session() {
	curl -fsS -X POST --data-binary @"$session_json" "http://$1/v1/sessions" |
		sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n1
}

# post_batch <addr> <sid> <batch> <out>: streams a batch, saving verdicts.
post_batch() {
	curl -fsS -X POST --data-binary @"$3" "http://$1/v1/sessions/$2/events" >"$4"
}

say "starting champion reference server (seed-1 model, no registry)"
start_server "$workdir/champ.log" -model "$workdir/leaps.model" -addr 127.0.0.1:0
champ_pid=$started_pid
champ_addr=$started_addr

say "starting challenger reference server (seed-2 model, no registry)"
start_server "$workdir/chall.log" -model "$workdir/leaps.model.seed2" -addr 127.0.0.1:0
chall_pid=$started_pid
chall_addr=$started_addr

# The gate's event floor is set impossibly high so the gated promotion
# attempt is deterministically rejected; the pass path is covered by
# unit tests where the comparison is controlled.
say "starting registry-backed server"
start_server "$workdir/reg.log" -registry "$workdir/registry" \
	-gate-min-events 10000000 -addr 127.0.0.1:0
reg_pid=$started_pid
reg_addr=$started_addr

say "computing reference verdicts"
champ_sid=$(open_session "$champ_addr")
chall_sid=$(open_session "$chall_addr")
[ -n "$champ_sid" ] && [ -n "$chall_sid" ] || fail "reference session creation returned no id"
post_batch "$champ_addr" "$champ_sid" "$batch_a" "$workdir/champ_a.json"
post_batch "$champ_addr" "$champ_sid" "$batch_b" "$workdir/champ_b.json"
post_batch "$chall_addr" "$chall_sid" "$batch_a" "$workdir/chall_a.json"
grep -q '"first_event"' "$workdir/champ_a.json" || fail "reference batch produced no verdicts"

say "reading the registry catalogue"
curl -fsS "http://$reg_addr/v1/models" >"$workdir/models.json"
current=$(sed -n 's/.*"current": *"\([^"]*\)".*/\1/p' "$workdir/models.json" | head -n1)
loaded=$(sed -n 's/.*"loaded": *"\([^"]*\)".*/\1/p' "$workdir/models.json" | head -n1)
challenger=$(grep -o '"id": *"[^"]*"' "$workdir/models.json" |
	sed 's/.*: *"\(.*\)"/\1/' | grep -v "^$current\$" | sort -u | head -n1)
[ -n "$current" ] && [ -n "$challenger" ] || fail "could not parse entry ids from /v1/models"
[ "$loaded" = "$current" ] || fail "server loaded $loaded but registry current is $current"
say "champion=$current challenger=$challenger"

say "promotion without shadow evidence must be refused"
status=$(curl -s -o "$workdir/noevidence.json" -w '%{http_code}' \
	-X POST -d '{"id": "'"$challenger"'"}' "http://$reg_addr/v1/models/promote")
[ "$status" = "409" ] || fail "evidence-free promote got status $status, want 409"
grep -q 'no shadow evidence' "$workdir/noevidence.json" || fail "409 body does not explain the refusal"

say "starting shadow evaluation of the challenger"
status=$(curl -s -o "$workdir/shadow.json" -w '%{http_code}' \
	-X POST -d '{"id": "'"$challenger"'"}' "http://$reg_addr/v1/models/shadow")
[ "$status" = "201" ] || fail "shadow start got status $status, want 201"
grep -q '"challenger_id": *"'"$challenger"'"' "$workdir/shadow.json" || fail "shadow status names the wrong challenger"

say "streaming batch A with the shadow attached"
pinned_sid=$(open_session "$reg_addr")
[ -n "$pinned_sid" ] || fail "session creation returned no id"
post_batch "$reg_addr" "$pinned_sid" "$batch_a" "$workdir/reg_a.json"
cmp -s "$workdir/reg_a.json" "$workdir/champ_a.json" ||
	fail "verdicts with shadow attached differ from the champion-only reference"
say "shadowed verdicts byte-identical to champion-only reference"

say "gated promotion must be rejected on insufficient evidence"
status=$(curl -s -o "$workdir/gated.json" -w '%{http_code}' \
	-X POST -d '{"id": "'"$challenger"'"}' "http://$reg_addr/v1/models/promote")
[ "$status" = "409" ] || fail "under-evidenced promote got status $status, want 409"
grep -q 'shadow events' "$workdir/gated.json" || fail "gate rejection does not list the failed condition"

curl -fsS "http://$reg_addr/v1/models" >"$workdir/models2.json"
grep -q '"events": *[1-9]' "$workdir/models2.json" || fail "shadow comparison accumulated no events"
say "gate rejected with evidence on record"

say "forcing the promotion"
status=$(curl -s -o "$workdir/promoted.json" -w '%{http_code}' \
	-X POST -d '{"id": "'"$challenger"'", "force": true}' "http://$reg_addr/v1/models/promote")
[ "$status" = "200" ] || fail "forced promote got status $status: $(cat "$workdir/promoted.json")"
grep -q '"to": *"'"$challenger"'"' "$workdir/promoted.json" || fail "promotion transition targets the wrong entry"

curl -fsS "http://$reg_addr/v1/models" >"$workdir/models3.json"
grep -q '"loaded": *"'"$challenger"'"' "$workdir/models3.json" || fail "challenger not serving after promotion"
grep -q '"challenger_id"' "$workdir/models3.json" && fail "shadow evaluation survived its challenger's promotion"
say "challenger promoted and serving"

say "checking verdict continuity of the pre-promotion session"
post_batch "$reg_addr" "$pinned_sid" "$batch_b" "$workdir/reg_b.json"
cmp -s "$workdir/reg_b.json" "$workdir/champ_b.json" ||
	fail "live session switched models mid-stream: batch B differs from its pinned model's reference"
say "live session stayed pinned to the old champion"

say "checking that new sessions score with the challenger"
new_sid=$(open_session "$reg_addr")
post_batch "$reg_addr" "$new_sid" "$batch_a" "$workdir/new_a.json"
cmp -s "$workdir/new_a.json" "$workdir/chall_a.json" ||
	fail "post-promotion session verdicts differ from the challenger reference"
say "new sessions score with the promoted model"

say "rolling back"
status=$(curl -s -o "$workdir/rollback.json" -w '%{http_code}' \
	-X POST -d '{}' "http://$reg_addr/v1/models/rollback")
[ "$status" = "200" ] || fail "rollback got status $status: $(cat "$workdir/rollback.json")"
grep -q '"to": *"'"$current"'"' "$workdir/rollback.json" || fail "rollback transition targets the wrong entry"

curl -fsS "http://$reg_addr/v1/models" >"$workdir/models4.json"
grep -q '"loaded": *"'"$current"'"' "$workdir/models4.json" || fail "champion not serving after rollback"
back_sid=$(open_session "$reg_addr")
post_batch "$reg_addr" "$back_sid" "$batch_a" "$workdir/back_a.json"
cmp -s "$workdir/back_a.json" "$workdir/champ_a.json" ||
	fail "post-rollback session verdicts differ from the champion reference"
say "rollback restored the champion for new sessions"

say "PASS"
