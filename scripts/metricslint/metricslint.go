// Command metricslint validates Prometheus text exposition read from
// stdin (or a file argument) the way promtool's check would, scoped to
// the conventions this repository's /metrics endpoint promises:
//
//   - every sample is preceded by a # TYPE line for its family, and
//     # HELP (when present) comes before # TYPE;
//   - metric and label names match the Prometheus naming charset;
//   - counter families end in _total;
//   - histogram families expose _bucket series with le labels that are
//     ascending, cumulative, and end in an +Inf bucket whose count
//     equals the family's _count series, plus _sum and _count;
//   - no series (name plus label set) appears twice;
//   - OpenMetrics exemplars only follow _bucket samples and parse as
//     `# {label="value",...} value [timestamp]`;
//   - an OpenMetrics `# EOF` terminator, when present, is the last
//     line (the classic text format omits it).
//
// It exits non-zero listing every violation. obs-smoke.sh pipes the
// live /metrics output through it, so a malformed exposition fails
// `make verify` even though the repository ships no Prometheus server.
package main

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	// exemplarRe matches the OpenMetrics exemplar tail after " # ".
	exemplarRe = regexp.MustCompile(`^\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\} [^ ]+( [^ ]+)?$`)
)

// sample is one parsed series sample.
type sample struct {
	line   int
	name   string
	labels map[string]string
	value  float64
}

// family accumulates everything seen for one metric family.
type family struct {
	name     string
	kind     string // from # TYPE; "" when none seen
	helpSeen bool
	typeLine int
	samples  []sample
}

func main() {
	in := os.Stdin
	if len(os.Args) == 2 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "metricslint:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	} else if len(os.Args) > 2 {
		fmt.Fprintln(os.Stderr, "usage: metricslint [metrics.txt] (default stdin)")
		os.Exit(2)
	}

	var problems []string
	fail := func(line int, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	families := map[string]*family{}
	order := []string{}
	fam := func(name string) *family {
		if f, ok := families[name]; ok {
			return f
		}
		f := &family{name: name}
		families[name] = f
		order = append(order, name)
		return f
	}
	seen := map[string]int{} // series signature -> first line

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	eofSeen := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if eofSeen > 0 {
			fail(lineNo, "content after the # EOF terminator (at line %d)", eofSeen)
			continue
		}
		// OpenMetrics terminator; the classic text format omits it.
		if line == "# EOF" {
			eofSeen = lineNo
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			f := fam(parts[0])
			if f.kind != "" {
				fail(lineNo, "# HELP for %s after its # TYPE", parts[0])
			}
			if len(f.samples) > 0 {
				fail(lineNo, "# HELP for %s after its samples", parts[0])
			}
			f.helpSeen = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				fail(lineNo, "malformed # TYPE line %q", line)
				continue
			}
			f := fam(parts[0])
			if f.kind != "" {
				fail(lineNo, "duplicate # TYPE for %s", parts[0])
			}
			if len(f.samples) > 0 {
				fail(lineNo, "# TYPE for %s after its samples", parts[0])
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				fail(lineNo, "unknown metric type %q for %s", parts[1], parts[0])
			}
			f.kind = parts[1]
			f.typeLine = lineNo
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}

		s, exemplar, err := parseSample(line)
		if err != nil {
			fail(lineNo, "%v", err)
			continue
		}
		s.line = lineNo
		if !nameRe.MatchString(s.name) {
			fail(lineNo, "invalid metric name %q", s.name)
		}
		for k := range s.labels {
			if !labelRe.MatchString(k) {
				fail(lineNo, "invalid label name %q on %s", k, s.name)
			}
		}
		if exemplar != "" {
			if !strings.HasSuffix(s.name, "_bucket") {
				fail(lineNo, "exemplar on non-bucket series %s", s.name)
			}
			if !exemplarRe.MatchString(exemplar) {
				fail(lineNo, "malformed exemplar %q", exemplar)
			}
		}
		sig := s.name + "{" + labelSig(s.labels) + "}"
		if first, dup := seen[sig]; dup {
			fail(lineNo, "duplicate series %s (first at line %d)", sig, first)
		} else {
			seen[sig] = lineNo
		}
		// Histogram child series belong to the base family.
		base := s.name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(s.name, suf)
			if trimmed != s.name {
				if f, ok := families[trimmed]; ok && f.kind == "histogram" {
					base = trimmed
				}
				break
			}
		}
		f := fam(base)
		if f.kind == "" {
			fail(lineNo, "sample %s before any # TYPE for %s", s.name, base)
		}
		f.samples = append(f.samples, s)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "metricslint:", err)
		os.Exit(2)
	}

	for _, name := range order {
		f := families[name]
		switch f.kind {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				problems = append(problems, fmt.Sprintf("line %d: counter %s does not end in _total", f.typeLine, name))
			}
		case "histogram":
			problems = append(problems, checkHistogram(f)...)
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "metricslint:", p)
		}
		fmt.Fprintf(os.Stderr, "metricslint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("metricslint: %d families, %d series ok\n", len(families), len(seen))
}

// parseSample splits one sample line into series, optional exemplar
// tail (after " # "), and value.
func parseSample(line string) (sample, string, error) {
	body, exemplar := line, ""
	if i := strings.Index(line, " # "); i >= 0 {
		body, exemplar = line[:i], line[i+3:]
	}
	s := sample{labels: map[string]string{}}
	rest := body
	if i := strings.IndexByte(body, '{'); i >= 0 {
		s.name = body[:i]
		j := strings.LastIndexByte(body, '}')
		if j < i {
			return s, "", fmt.Errorf("unbalanced braces in %q", line)
		}
		if err := parseLabels(body[i+1:j], s.labels); err != nil {
			return s, "", err
		}
		rest = strings.TrimSpace(body[j+1:])
	} else {
		fields := strings.Fields(body)
		if len(fields) < 2 {
			return s, "", fmt.Errorf("malformed sample %q", line)
		}
		s.name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return s, "", fmt.Errorf("malformed sample value in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, "", fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	s.value = v
	return s, exemplar, nil
}

// parseLabels parses `k="v",k2="v2"` into dst.
func parseLabels(body string, dst map[string]string) error {
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			return fmt.Errorf("malformed labels %q", body)
		}
		key := body[:eq]
		rest := body[eq+2:]
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value in %q", body)
		}
		if _, dup := dst[key]; dup {
			return fmt.Errorf("duplicate label %q", key)
		}
		dst[key] = rest[:end]
		body = rest[end+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return nil
}

// parseValue accepts Prometheus sample values, including +Inf/-Inf/NaN.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// labelSig renders a label set deterministically for duplicate checks.
func labelSig(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, ",")
}

// checkHistogram validates one histogram family's bucket discipline,
// per labelled child (children are distinguished by their non-le
// labels).
func checkHistogram(f *family) []string {
	var problems []string
	type child struct {
		buckets []sample // in input order
		sum     *sample
		count   *sample
	}
	children := map[string]*child{}
	get := func(labels map[string]string) *child {
		rest := map[string]string{}
		for k, v := range labels {
			if k != "le" {
				rest[k] = v
			}
		}
		sig := labelSig(rest)
		c, ok := children[sig]
		if !ok {
			c = &child{}
			children[sig] = c
		}
		return c
	}
	for i := range f.samples {
		s := f.samples[i]
		switch s.name {
		case f.name + "_bucket":
			get(s.labels).buckets = append(get(s.labels).buckets, s)
		case f.name + "_sum":
			get(s.labels).sum = &f.samples[i]
		case f.name + "_count":
			get(s.labels).count = &f.samples[i]
		case f.name:
			problems = append(problems, fmt.Sprintf("line %d: bare sample %s for histogram family", s.line, s.name))
		}
	}
	for sig, c := range children {
		where := f.name
		if sig != "" {
			where += "{" + sig + "}"
		}
		if len(c.buckets) == 0 {
			problems = append(problems, fmt.Sprintf("histogram %s has no _bucket series", where))
			continue
		}
		if c.sum == nil {
			problems = append(problems, fmt.Sprintf("histogram %s missing _sum", where))
		}
		if c.count == nil {
			problems = append(problems, fmt.Sprintf("histogram %s missing _count", where))
		}
		prevLe := math.Inf(-1)
		prevCount := -1.0
		lastLe := 0.0
		for _, b := range c.buckets {
			leStr, ok := b.labels["le"]
			if !ok {
				problems = append(problems, fmt.Sprintf("line %d: %s_bucket without le label", b.line, f.name))
				continue
			}
			le, err := parseValue(leStr)
			if err != nil {
				problems = append(problems, fmt.Sprintf("line %d: bad le %q", b.line, leStr))
				continue
			}
			if le <= prevLe {
				problems = append(problems, fmt.Sprintf("line %d: %s buckets not le-ascending (%g after %g)", b.line, where, le, prevLe))
			}
			if b.value < prevCount {
				problems = append(problems, fmt.Sprintf("line %d: %s buckets not cumulative (%g after %g)", b.line, where, b.value, prevCount))
			}
			prevLe, prevCount, lastLe = le, b.value, le
		}
		if !math.IsInf(lastLe, 1) {
			problems = append(problems, fmt.Sprintf("histogram %s does not end in an le=\"+Inf\" bucket", where))
		} else if c.count != nil && c.buckets[len(c.buckets)-1].value != c.count.value {
			problems = append(problems, fmt.Sprintf("histogram %s +Inf bucket (%g) != _count (%g)",
				where, c.buckets[len(c.buckets)-1].value, c.count.value))
		}
	}
	return problems
}
