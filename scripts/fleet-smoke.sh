#!/bin/sh
# End-to-end smoke test of the fleet layer over real sockets: three
# registry-replicated leaps-serve replicas behind a leaps-router
# consistent-hash front. Asserts that
#
#   - each replica boots by syncing its local registry mirror from the
#     primary published by leaps-train -registry,
#   - a session created through the router lands on a ring member and
#     reports its owner and ring generation in session info,
#   - verdicts forwarded by the router are byte-identical to a plain
#     single-server reference scoring the same stream,
#   - draining the session's owner hands it off by checkpoint export/
#     import and the stream continues byte-identically on the winner,
#   - rejoining restores the member and bumps the ring generation,
#   - a forced promotion on the primary registry propagates to every
#     replica through background sync, and new sessions routed through
#     the fleet score with the promoted challenger.
set -eu

workdir=$(mktemp -d)
pids=""
cleanup() {
	for pid in $pids; do
		kill "$pid" 2>/dev/null || true
	done
	for pid in $pids; do
		wait "$pid" 2>/dev/null || true
	done
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

say() { printf 'fleet-smoke: %s\n' "$*"; }
fail() {
	say "FAIL: $*"
	exit 1
}

say "building CLIs into $workdir"
go build -o "$workdir" ./cmd/leaps-trace ./cmd/leaps-train ./cmd/leaps-serve ./cmd/leaps-router

say "generating dataset with serve wire files"
"$workdir/leaps-trace" -dataset vim_reverse_tcp -out "$workdir" -seed 1 -serve-json -quiet

say "training seeds 1 and 2 into the primary registry"
"$workdir/leaps-train" \
	-benign "$workdir/vim_reverse_tcp_benign.letl" \
	-mixed "$workdir/vim_reverse_tcp_mixed.letl" \
	-model "$workdir/leaps.model" \
	-lambda 8 -sigma2 2 -seeds "1, 2" \
	-registry "$workdir/primary" -quiet -telemetry-out none

session_json="$workdir/vim_reverse_tcp_malicious.session.json"
batch_a="$workdir/vim_reverse_tcp_malicious.events.json"
batch_b="$workdir/vim_reverse_tcp_benign.events.json"

# start_bg <binary> <logfile> <args...>: boots a CLI in the background
# and sets $started_pid / $started_addr from its addr= log line (runs in
# the main shell so the pid survives).
start_bg() {
	bin="$1"
	log="$2"
	shift 2
	"$workdir/$bin" "$@" 2>"$log" &
	started_pid=$!
	pids="$pids $started_pid"
	started_addr=""
	for _ in $(seq 1 100); do
		started_addr=$(sed -n 's/.*addr=\([0-9.]*:[0-9]*\).*/\1/p' "$log" | head -n1)
		[ -n "$started_addr" ] && break
		kill -0 "$started_pid" 2>/dev/null || fail "$bin exited early: $(cat "$log")"
		sleep 0.1
	done
	[ -n "$started_addr" ] || fail "no listen address logged in $log"
}

say "starting champion and challenger reference servers"
start_bg leaps-serve "$workdir/champ.log" -model "$workdir/leaps.model" -addr 127.0.0.1:0
champ_addr=$started_addr
start_bg leaps-serve "$workdir/chall.log" -model "$workdir/leaps.model.seed2" -addr 127.0.0.1:0
chall_addr=$started_addr

say "starting the primary (registry-owning) server"
start_bg leaps-serve "$workdir/primary.log" -registry "$workdir/primary" -addr 127.0.0.1:0
primary_addr=$started_addr

say "starting 3 replicas syncing from the primary registry"
replica_flags=""
replica_addrs=""
for i in 0 1 2; do
	start_bg leaps-serve "$workdir/r$i.log" \
		-registry "$workdir/mirror-r$i" -sync-from "$workdir/primary" \
		-sync-interval 200ms -replica-id "r$i" \
		-spool "$workdir/spool-r$i" -addr 127.0.0.1:0
	replica_flags="$replica_flags -replica r$i=http://$started_addr"
	replica_addrs="$replica_addrs $started_addr"
done

say "starting the router"
# shellcheck disable=SC2086 # replica_flags is a flag list by construction
start_bg leaps-router "$workdir/router.log" $replica_flags \
	-ring-seed 7 -health-interval 200ms -addr 127.0.0.1:0
router_addr=$started_addr

curl -fsS "http://$router_addr/readyz" >/dev/null || fail "router not ready"

open_session() {
	curl -fsS -X POST --data-binary @"$session_json" "http://$1/v1/sessions"
}
post_batch() {
	curl -fsS -X POST --data-binary @"$3" "http://$1/v1/sessions/$2/events" >"$4"
}
field() {
	sed -n 's/.*"'"$2"'": *"\([^"]*\)".*/\1/p' "$1" | head -n1
}

say "computing reference verdicts"
champ_sid=$(open_session "$champ_addr" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n1)
chall_sid=$(open_session "$chall_addr" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n1)
[ -n "$champ_sid" ] && [ -n "$chall_sid" ] || fail "reference session creation returned no id"
post_batch "$champ_addr" "$champ_sid" "$batch_a" "$workdir/champ_a.json"
post_batch "$champ_addr" "$champ_sid" "$batch_b" "$workdir/champ_b.json"
post_batch "$chall_addr" "$chall_sid" "$batch_a" "$workdir/chall_a.json"
grep -q '"first_event"' "$workdir/champ_a.json" || fail "reference batch produced no verdicts"

say "creating a session through the router"
open_session "$router_addr" >"$workdir/create.json"
sid=$(field "$workdir/create.json" id)
owner=$(field "$workdir/create.json" replica)
[ -n "$sid" ] || fail "routed session creation returned no id"
case "$owner" in
r0 | r1 | r2) ;;
*) fail "session owner '$owner' is not a fleet member" ;;
esac
grep -q '"ring_generation": *3' "$workdir/create.json" ||
	fail "session info lacks ring generation 3: $(cat "$workdir/create.json")"
say "session $sid placed on $owner at ring generation 3"

say "streaming batch A through the router"
post_batch "$router_addr" "$sid" "$batch_a" "$workdir/routed_a.json"
cmp -s "$workdir/routed_a.json" "$workdir/champ_a.json" ||
	fail "routed verdicts differ from the single-server reference"
say "routed verdicts byte-identical to the reference"

say "draining $owner mid-stream"
curl -fsS -X POST -d '{"member": "'"$owner"'"}' \
	"http://$router_addr/v1/fleet/drain" >"$workdir/drain.json"
grep -q '"moved": *1' "$workdir/drain.json" ||
	fail "drain did not move the session: $(cat "$workdir/drain.json")"
curl -fsS "http://$router_addr/v1/sessions/$sid" >"$workdir/after.json"
new_owner=$(field "$workdir/after.json" replica)
[ -n "$new_owner" ] && [ "$new_owner" != "$owner" ] ||
	fail "session still reports owner '$new_owner' after draining $owner"
say "session handed off to $new_owner"

say "streaming batch B after the handoff"
post_batch "$router_addr" "$sid" "$batch_b" "$workdir/routed_b.json"
cmp -s "$workdir/routed_b.json" "$workdir/champ_b.json" ||
	fail "post-handoff verdicts differ from the uninterrupted reference"
say "verdict stream continued byte-identically across the handoff"

say "rejoining $owner"
curl -fsS -X POST -d '{"member": "'"$owner"'"}' \
	"http://$router_addr/v1/fleet/join" >"$workdir/join.json"
curl -fsS "http://$router_addr/v1/fleet" >"$workdir/fleet.json"
grep -q '"generation": *5' "$workdir/fleet.json" ||
	fail "ring generation after drain+join: $(cat "$workdir/fleet.json")"

say "force-promoting the challenger on the primary"
curl -fsS "http://$primary_addr/v1/models" >"$workdir/models.json"
current=$(field "$workdir/models.json" current)
challenger=$(grep -o '"id": *"[^"]*"' "$workdir/models.json" |
	sed 's/.*: *"\(.*\)"/\1/' | grep -v "^$current\$" | sort -u | head -n1)
[ -n "$current" ] && [ -n "$challenger" ] || fail "could not parse entry ids from /v1/models"
status=$(curl -s -o "$workdir/promote.json" -w '%{http_code}' \
	-X POST -d '{"id": "'"$challenger"'", "force": true}' "http://$primary_addr/v1/models/promote")
[ "$status" = "200" ] || fail "forced promote got status $status: $(cat "$workdir/promote.json")"

say "waiting for replication to reach every replica"
for addr in $replica_addrs; do
	synced=""
	for _ in $(seq 1 100); do
		if curl -fsS "http://$addr/v1/models" | grep -q '"loaded": *"'"$challenger"'"'; then
			synced=1
			break
		fi
		sleep 0.1
	done
	[ -n "$synced" ] || fail "replica $addr never loaded the promoted challenger"
done
say "all replicas serving the promoted challenger"

say "checking that new routed sessions score with the challenger"
new_sid=$(open_session "$router_addr" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n1)
post_batch "$router_addr" "$new_sid" "$batch_a" "$workdir/new_a.json"
cmp -s "$workdir/new_a.json" "$workdir/chall_a.json" ||
	fail "post-promotion routed verdicts differ from the challenger reference"
say "promotion propagated through registry sync to the routed fleet"

say "PASS"
