#!/bin/sh
# Smoke test for the runtime introspection surface: builds the CLIs,
# generates a small dataset, trains a model, then runs leaps-detect with
# -debug-addr and scrapes its live /metrics, /spans and pprof endpoints.
#
# Exits non-zero if any endpoint is unreachable or the expected pipeline
# metrics are missing from the scrape / telemetry report.
set -eu

workdir=$(mktemp -d)
detect_pid=""
cleanup() {
	[ -n "$detect_pid" ] && kill "$detect_pid" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

say() { printf 'verify-telemetry: %s\n' "$*"; }
fail() {
	say "FAIL: $*"
	exit 1
}

say "building CLIs into $workdir"
go build -o "$workdir" ./cmd/leaps-trace ./cmd/leaps-train ./cmd/leaps-detect

say "generating dataset"
"$workdir/leaps-trace" -dataset vim_reverse_tcp -out "$workdir" -seed 1 -quiet

say "training model"
"$workdir/leaps-train" \
	-benign "$workdir/vim_reverse_tcp_benign.letl" \
	-mixed "$workdir/vim_reverse_tcp_mixed.letl" \
	-model "$workdir/leaps.model" \
	-lambda 8 -sigma2 2 -seed 1 -quiet \
	-telemetry-out "$workdir/train.telemetry.json"

grep -q 'svm_train_runs_total' "$workdir/train.telemetry.json" ||
	fail "train telemetry report lacks svm_train_runs_total"
grep -q 'weight_paths_total' "$workdir/train.telemetry.json" ||
	fail "train telemetry report lacks weight_paths_total"
say "train telemetry report OK"

say "starting leaps-detect with a live debug server"
"$workdir/leaps-detect" \
	-model "$workdir/leaps.model" \
	-log "$workdir/vim_reverse_tcp_malicious.letl" \
	-debug-addr 127.0.0.1:0 -debug-wait 30s \
	-telemetry-out none >"$workdir/detect.out" 2>"$workdir/detect.err" &
detect_pid=$!

# The resolved address (port 0 picks a free one) is logged on stderr as
# ... msg="debug server listening" addr=127.0.0.1:NNNNN
addr=""
for _ in $(seq 1 50); do
	addr=$(sed -n 's/.*debug server listening.*addr=\([0-9.:]*\).*/\1/p' "$workdir/detect.err" | head -n1)
	[ -n "$addr" ] && break
	kill -0 "$detect_pid" 2>/dev/null || fail "leaps-detect exited early: $(cat "$workdir/detect.err")"
	sleep 0.1
done
[ -n "$addr" ] && say "debug server at $addr" || fail "no debug server address logged"

metrics=$(curl -fsS "http://$addr/metrics")
echo "$metrics" | grep -q 'etl_parsed_bytes_total' || fail "/metrics lacks etl_parsed_bytes_total"
echo "$metrics" | grep -q 'core_detect_windows_total' || fail "/metrics lacks core_detect_windows_total"
say "/metrics OK"

curl -fsS "http://$addr/metrics?format=json" >"$workdir/metrics.json"
grep -q '"name"' "$workdir/metrics.json" || fail "/metrics?format=json malformed"
say "/metrics?format=json OK"

curl -fsS "http://$addr/spans" >"$workdir/spans.out"
grep -q 'detect' "$workdir/spans.out" || fail "/spans lacks the detect span"
say "/spans OK"

curl -fsS "http://$addr/debug/vars" >"$workdir/vars.out"
grep -q 'cmdline' "$workdir/vars.out" || fail "/debug/vars (expvar) malformed"
say "/debug/vars OK"

curl -fsS "http://$addr/debug/pprof/cmdline" >/dev/null || fail "pprof cmdline endpoint unreachable"
say "/debug/pprof OK"

kill "$detect_pid" 2>/dev/null || true
wait "$detect_pid" 2>/dev/null || true
detect_pid=""

say "PASS"
