#!/bin/sh
# End-to-end smoke test of the retraining autopilot: serve → drift →
# retrain → shadow → gated promotion, with a forced mid-cycle crash and
# a restart that must converge on the same promotion. Asserts that
#
#   - traffic past -autopilot-trigger starts a retraining cycle that
#     trains a candidate, publishes it, and begins shadow evaluation,
#   - a crash point armed via LEAPS_CRASHPOINT kills the server with
#     the faultinject exit code (70) after the stage's side effect but
#     before the journal admits it,
#   - the journal under <registry>/autopilot records the partial cycle
#     (published journaled, shadow-started not),
#   - a restarted server resumes the interrupted cycle from the journal
#     and drives it through the gate to a promotion,
#   - the promoted model serves new sessions with verdicts byte-identical
#     to a reference server running the same retrained model, and the
#     breaker stays closed throughout.
set -eu

workdir=$(mktemp -d)
ap_pid=""
ref_pid=""
pump_pid=""
cleanup() {
	touch "$workdir/pump.stop" 2>/dev/null || true
	for pid in "$pump_pid" "$ap_pid" "$ref_pid"; do
		[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	done
	for pid in "$pump_pid" "$ap_pid" "$ref_pid"; do
		[ -n "$pid" ] && wait "$pid" 2>/dev/null || true
	done
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

say() { printf 'autopilot-smoke: %s\n' "$*"; }
fail() {
	say "FAIL: $*"
	exit 1
}

say "building CLIs into $workdir"
go build -o "$workdir" ./cmd/leaps-trace ./cmd/leaps-train ./cmd/leaps-serve

say "generating dataset with serve wire files"
"$workdir/leaps-trace" -dataset vim_reverse_tcp -out "$workdir" -seed 1 -serve-json -quiet

# Seed 1 becomes the serving champion. Seed 2 is also trained so its
# model file can back a reference server; publishing it up front is
# harmless — the autopilot's Publish is content-addressed, so the
# retrained candidate resolves to the same entry.
say "training seeds 1 and 2 and publishing into the registry"
"$workdir/leaps-train" \
	-benign "$workdir/vim_reverse_tcp_benign.letl" \
	-mixed "$workdir/vim_reverse_tcp_mixed.letl" \
	-model "$workdir/leaps.model" \
	-lambda 8 -sigma2 2 -seeds "1, 2" \
	-registry "$workdir/registry" -quiet -telemetry-out none

session_json="$workdir/vim_reverse_tcp_mixed.session.json"
batch_mixed="$workdir/vim_reverse_tcp_mixed.events.json"
journal="$workdir/registry/autopilot/autopilot.jsonl"

# start_server <logfile> <args...>: boots leaps-serve in the background
# and sets $started_pid / $started_addr (runs in the main shell so the
# pid survives; don't call it in a command substitution).
start_server() {
	log="$1"
	shift
	"$workdir/leaps-serve" "$@" 2>"$log" &
	started_pid=$!
	started_addr=""
	for _ in $(seq 1 100); do
		started_addr=$(sed -n 's/.*addr=\([0-9.]*:[0-9]*\).*/\1/p' "$log" | head -n1)
		[ -n "$started_addr" ] && break
		kill -0 "$started_pid" 2>/dev/null || fail "leaps-serve exited early: $(cat "$log")"
		sleep 0.1
	done
	[ -n "$started_addr" ] || fail "no listen address logged in $log"
}

# start_autopilot <logfile>: the registry-backed server with the
# retraining controller. Mixed traffic keeps both gate measurements
# defined (the champion flags some windows and clears others), and the
# thresholds leave margin for seed-to-seed disagreement.
start_autopilot() {
	start_server "$1" -registry "$workdir/registry" -addr 127.0.0.1:0 \
		-autopilot \
		-autopilot-benign "$workdir/vim_reverse_tcp_benign.letl" \
		-autopilot-mixed "$workdir/vim_reverse_tcp_mixed.letl" \
		-autopilot-lambda 8 -autopilot-sigma2 2 -autopilot-seed 2 \
		-autopilot-trigger 100 -autopilot-interval 100ms \
		-autopilot-shadow-timeout 60s \
		-gate-min-events 400 -gate-min-tpr 0.5 -gate-max-fpr 0.5
}

# open_session <addr>: creates a session for the mixed process.
open_session() {
	curl -fsS -X POST --data-binary @"$session_json" "http://$1/v1/sessions" |
		sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n1
}

# post_batch <addr> <sid> <batch> <out>: streams a batch, saving verdicts.
post_batch() {
	curl -fsS -X POST --data-binary @"$3" "http://$1/v1/sessions/$2/events" >"$4"
}

# pump_loop <addr>: background traffic generator — one short-lived
# session per iteration streaming the mixed batch, until pump.stop
# appears. Errors are ignored; the server under test may crash.
pump_loop() {
	addr=$1
	until [ -f "$workdir/pump.stop" ]; do
		sid=$(curl -s -X POST --data-binary @"$session_json" "http://$addr/v1/sessions" 2>/dev/null |
			sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n1) || sid=""
		if [ -n "$sid" ]; then
			curl -s -X POST --data-binary @"$batch_mixed" "http://$addr/v1/sessions/$sid/events" >/dev/null 2>&1 || true
			curl -s -X DELETE "http://$addr/v1/sessions/$sid" >/dev/null 2>&1 || true
		fi
		sleep 0.1
	done
}

stop_pump() {
	touch "$workdir/pump.stop"
	[ -n "$pump_pid" ] && wait "$pump_pid" 2>/dev/null || true
	pump_pid=""
	rm -f "$workdir/pump.stop"
}

say "run 1: crash point armed at autopilot/journal/shadow-started"
export LEAPS_CRASHPOINT="autopilot/journal/shadow-started"
start_autopilot "$workdir/ap1.log"
unset LEAPS_CRASHPOINT
ap_pid=$started_pid
ap_addr=$started_addr
grep -q "crash points armed" "$workdir/ap1.log" || fail "server did not arm LEAPS_CRASHPOINT"

champion=$(curl -fsS "http://$ap_addr/v1/models" |
	sed -n 's/.*"current": *"\([^"]*\)".*/\1/p' | head -n1)
[ -n "$champion" ] || fail "no champion in the registry catalogue"
say "champion=$champion"

pump_loop "$ap_addr" &
pump_pid=$!

say "streaming traffic until the cycle reaches the armed crash point"
for _ in $(seq 1 1200); do
	kill -0 "$ap_pid" 2>/dev/null || break
	sleep 0.1
done
kill -0 "$ap_pid" 2>/dev/null && fail "server did not crash within 120s: $(tail -5 "$workdir/ap1.log")"
st=0
wait "$ap_pid" || st=$?
ap_pid=""
[ "$st" = "70" ] || fail "crashed server exited $st, want the faultinject exit code 70"
stop_pump
say "server died with exit code 70 at the armed crash point"

[ -f "$journal" ] || fail "no autopilot journal at $journal"
grep -q '"state":"published"' "$journal" || fail "journal lacks the published transition"
grep -q '"state":"shadow-started"' "$journal" && fail "shadow-started was journaled despite the crash point"
say "journal holds the partial cycle (published, no shadow-started)"

say "run 2: restarting; the journal must resume the interrupted cycle"
start_autopilot "$workdir/ap2.log"
ap_pid=$started_pid
ap_addr=$started_addr

pump_loop "$ap_addr" &
pump_pid=$!

say "waiting for the resumed cycle to promote"
status=""
promoted=""
for _ in $(seq 1 1200); do
	status=$(curl -s "http://$ap_addr/v1/autopilot" || true)
	if printf '%s' "$status" | grep -q '"promoted": *1'; then
		promoted=yes
		break
	fi
	kill -0 "$ap_pid" 2>/dev/null || fail "server died awaiting promotion: $(tail -5 "$workdir/ap2.log")"
	sleep 0.1
done
[ -n "$promoted" ] || fail "no promotion within 120s; status: $status; log: $(tail -5 "$workdir/ap2.log")"
stop_pump

grep -q "resuming interrupted cycle" "$workdir/ap2.log" || fail "restart did not resume from the journal"
grep -q '"outcome":"promoted"' "$journal" || fail "journal lacks the promoted record"
printf '%s' "$status" | grep -q '"breaker_open": *false' || fail "circuit breaker open after a clean promotion"
say "resumed cycle promoted with the breaker closed"

curl -fsS "http://$ap_addr/v1/models" >"$workdir/models.json"
current=$(sed -n 's/.*"current": *"\([^"]*\)".*/\1/p' "$workdir/models.json" | head -n1)
loaded=$(sed -n 's/.*"loaded": *"\([^"]*\)".*/\1/p' "$workdir/models.json" | head -n1)
[ -n "$current" ] || fail "no current entry after promotion"
[ "$current" != "$champion" ] || fail "current pointer still the old champion after promotion"
[ "$loaded" = "$current" ] || fail "server loaded $loaded but registry current is $current"
say "promoted entry $current is serving (was $champion)"

say "starting reference server on the retrained model (seed 2)"
start_server "$workdir/ref.log" -model "$workdir/leaps.model.seed2" -addr 127.0.0.1:0
ref_pid=$started_pid
ref_addr=$started_addr

ref_sid=$(open_session "$ref_addr")
new_sid=$(open_session "$ap_addr")
[ -n "$ref_sid" ] && [ -n "$new_sid" ] || fail "session creation returned no id"
post_batch "$ref_addr" "$ref_sid" "$batch_mixed" "$workdir/ref_verdicts.json"
post_batch "$ap_addr" "$new_sid" "$batch_mixed" "$workdir/new_verdicts.json"
cmp -s "$workdir/new_verdicts.json" "$workdir/ref_verdicts.json" ||
	fail "post-promotion verdicts differ from the retrained model's reference"
say "post-promotion sessions score byte-identically to the retrained model"

say "PASS"
