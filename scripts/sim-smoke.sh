#!/bin/sh
# sim-smoke.sh — end-to-end smoke test of the deterministic cluster load
# simulator. Builds leaps-sim, runs a small churn scenario (crash/restore
# plus a mid-traffic promotion) twice with the same seed and requires the
# reports AND event logs to be byte-identical; then runs the same
# scenario with a different seed and requires the verdict stream to
# differ (the determinism is seeded, not degenerate). Finally asserts the
# BENCH_sim.json compare gate passes against the committed baseline.
# Wired into `make verify` via the sim-smoke target.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d -t leaps-sim-smoke-XXXXXX)
trap 'rm -rf "$workdir"' EXIT INT TERM

echo "sim-smoke: building leaps-sim"
go build -o "$workdir/leaps-sim" ./cmd/leaps-sim

cat > "$workdir/scenario.json" <<'EOF'
{
  "name": "smoke",
  "seed": 4242,
  "replicas": 2,
  "duration_sec": 8,
  "arrival": {"process": "poisson", "rate_per_sec": 4},
  "lifetime": {"dist": "uniform", "min_events": 30, "max_events": 60},
  "mix": [
    {"app": "vim", "weight": 3},
    {"app": "vim", "payload": "reverse_tcp", "method": "online-injection", "payload_fraction": 0.3, "weight": 1}
  ],
  "batch_events": 10,
  "batch_interval_ms": 200,
  "service": {"per_event_micros": 150, "batch_overhead_micros": 500, "jitter_frac": 0.2},
  "faults": [
    {"replica": 0, "at_sec": 3, "down_sec": 2, "kind": "sigterm"},
    {"replica": 1, "at_sec": 4, "down_sec": 1, "kind": "kill"}
  ],
  "promotion": {"at_sec": 5},
  "model": {"dataset": "vim_reverse_tcp", "seed": 7, "challenger_seed": 11,
            "benign_events": 2000, "mixed_events": 1000, "malicious_events": 500}
}
EOF

echo "sim-smoke: run 1"
"$workdir/leaps-sim" -q -scenario "$workdir/scenario.json" \
    -report "$workdir/run1.json" -eventlog "$workdir/run1.log" -workdir "$workdir/w1" 2> /dev/null
echo "sim-smoke: run 2 (same seed)"
"$workdir/leaps-sim" -q -scenario "$workdir/scenario.json" \
    -report "$workdir/run2.json" -eventlog "$workdir/run2.log" -workdir "$workdir/w2" 2> /dev/null

cmp "$workdir/run1.json" "$workdir/run2.json" || {
    echo "sim-smoke: FAIL: same seed produced different reports" >&2
    diff "$workdir/run1.json" "$workdir/run2.json" >&2 || true
    exit 1
}
cmp "$workdir/run1.log" "$workdir/run2.log" || {
    echo "sim-smoke: FAIL: same seed produced different event logs" >&2
    exit 1
}
echo "sim-smoke: same seed => byte-identical report and event log"

grep -q '"promoted": true' "$workdir/run1.json" || {
    echo "sim-smoke: FAIL: mid-traffic promotion did not fire" >&2
    exit 1
}
grep -q '"crashes": 1' "$workdir/run1.json" || {
    echo "sim-smoke: FAIL: no crash recorded in the report" >&2
    exit 1
}

echo "sim-smoke: run 3 (different seed)"
"$workdir/leaps-sim" -q -scenario "$workdir/scenario.json" -seed 4243 \
    -report "$workdir/run3.json" -workdir "$workdir/w3" 2> /dev/null
sum1=$(grep '"verdict_checksum"' "$workdir/run1.json")
sum3=$(grep '"verdict_checksum"' "$workdir/run3.json")
if [ "$sum1" = "$sum3" ]; then
    echo "sim-smoke: FAIL: different seeds produced the same verdict checksum" >&2
    exit 1
fi
echo "sim-smoke: different seed => different verdict stream"

echo "sim-smoke: comparing against committed BENCH_sim.json"
go run ./cmd/leaps-bench -q -sim-compare BENCH_sim.json

echo "sim-smoke: OK"
