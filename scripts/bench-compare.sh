#!/bin/sh
# bench-compare.sh — rerun the benchmark suites and diff them against
# the committed baselines: BENCH_baseline.json (pipeline ns/op) and
# BENCH_serve.json (serving p95 latency), flagging >20% regressions.
#
# Usage: scripts/bench-compare.sh [-w] [baseline.json [serve-baseline.json]]
#   -w    warn on regressions instead of failing (for noisy machines)
#
# The comparisons themselves live in `leaps-bench -perf-compare` and
# `leaps-bench -serve-compare`; this script is the make/CI entry point.
set -eu

cd "$(dirname "$0")/.."

warn=""
if [ "${1:-}" = "-w" ]; then
    warn="-perf-warn"
    shift
fi
baseline="${1:-BENCH_baseline.json}"
serve_baseline="${2:-BENCH_serve.json}"

if [ ! -f "$baseline" ]; then
    echo "bench-compare: baseline $baseline not found; generate it with 'make bench'" >&2
    exit 1
fi
if [ ! -f "$serve_baseline" ]; then
    echo "bench-compare: serve baseline $serve_baseline not found; generate it with 'make bench'" >&2
    exit 1
fi

exec go run ./cmd/leaps-bench -perf-compare "$baseline" -serve-compare "$serve_baseline" $warn
