#!/bin/sh
# bench-compare.sh — rerun the benchmark suites and diff them against
# the committed baselines: BENCH_baseline.json (pipeline ns/op),
# BENCH_serve.json (serving p95 latency) and BENCH_sim.json (canonical
# cluster-simulation scenarios), flagging >20% regressions. The
# simulation rows' counts and verdict checksums are deterministic and
# gate exactly even under -w.
#
# Usage: scripts/bench-compare.sh [-w] [baseline.json [serve-baseline.json [sim-baseline.json]]]
#   -w    warn on regressions instead of failing (for noisy machines)
#
# The comparisons themselves live in `leaps-bench -perf-compare`,
# `leaps-bench -serve-compare` and `leaps-bench -sim-compare`; this
# script is the make/CI entry point.
set -eu

cd "$(dirname "$0")/.."

warn=""
if [ "${1:-}" = "-w" ]; then
    warn="-perf-warn"
    shift
fi
baseline="${1:-BENCH_baseline.json}"
serve_baseline="${2:-BENCH_serve.json}"
sim_baseline="${3:-BENCH_sim.json}"

for f in "$baseline" "$serve_baseline" "$sim_baseline"; do
    if [ ! -f "$f" ]; then
        echo "bench-compare: baseline $f not found; generate it with 'make bench'" >&2
        exit 1
    fi
done

exec go run ./cmd/leaps-bench -perf-compare "$baseline" -serve-compare "$serve_baseline" -sim-compare "$sim_baseline" $warn
