#!/bin/sh
# bench-compare.sh — rerun the pipeline benchmark suite and diff it
# against the committed BENCH_baseline.json, flagging >20% ns/op
# regressions.
#
# Usage: scripts/bench-compare.sh [-w] [baseline.json]
#   -w    warn on regressions instead of failing (for noisy machines)
#
# The comparison itself lives in `leaps-bench -perf-compare`; this script
# is the make/CI entry point.
set -eu

cd "$(dirname "$0")/.."

warn=""
if [ "${1:-}" = "-w" ]; then
    warn="-perf-warn"
    shift
fi
baseline="${1:-BENCH_baseline.json}"

if [ ! -f "$baseline" ]; then
    echo "bench-compare: baseline $baseline not found; generate it with 'make bench'" >&2
    exit 1
fi

exec go run ./cmd/leaps-bench -perf-compare "$baseline" $warn
