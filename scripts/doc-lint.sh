#!/bin/sh
# Godoc lint gate: every package under internal/ and cmd/ must carry a
# package comment, and every exported identifier in internal/serve,
# internal/registry, internal/telemetry, internal/sim and internal/fleet
# must carry a doc comment. Wired into `make verify` via the doc-lint
# target.
set -eu
cd "$(dirname "$0")/.."
exec go run ./scripts/doclint -strict internal/serve,internal/registry,internal/telemetry,internal/sim,internal/fleet ./internal ./cmd
