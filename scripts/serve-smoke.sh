#!/bin/sh
# End-to-end smoke test of the leaps-serve subsystem: generates a
# dataset, trains a model, boots the server, and drives one detection
# session over HTTP with curl. Asserts that
#
#   - a streamed session produces window verdicts,
#   - SIGTERM checkpoints the session to the spool and exits cleanly,
#   - a restarted server restores the session and scores the next batch
#     byte-identically to a never-interrupted reference server,
#   - saturating a session queue yields 429 with a Retry-After header.
set -eu

workdir=$(mktemp -d)
ref_pid=""
test_pid=""
bp_pid=""
cleanup() {
	# SIGTERM triggers graceful shutdown (spool writes inside $workdir),
	# so wait for the servers to finish before removing the tree.
	for pid in "$ref_pid" "$test_pid" "$bp_pid"; do
		[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	done
	for pid in "$ref_pid" "$test_pid" "$bp_pid"; do
		[ -n "$pid" ] && wait "$pid" 2>/dev/null || true
	done
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

say() { printf 'serve-smoke: %s\n' "$*"; }
fail() {
	say "FAIL: $*"
	exit 1
}

say "building CLIs into $workdir"
go build -o "$workdir" ./cmd/leaps-trace ./cmd/leaps-train ./cmd/leaps-serve

say "generating dataset with serve wire files"
"$workdir/leaps-trace" -dataset vim_reverse_tcp -out "$workdir" -seed 1 -serve-json -quiet

say "training model"
"$workdir/leaps-train" \
	-benign "$workdir/vim_reverse_tcp_benign.letl" \
	-mixed "$workdir/vim_reverse_tcp_mixed.letl" \
	-model "$workdir/leaps.model" \
	-lambda 8 -sigma2 2 -seed 1 -quiet -telemetry-out none

session_json="$workdir/vim_reverse_tcp_malicious.session.json"
batch_a="$workdir/vim_reverse_tcp_malicious.events.json"
batch_b="$workdir/vim_reverse_tcp_benign.events.json"

# start_server <logfile> <args...>: boots leaps-serve in the background
# and sets $started_pid / $started_addr (runs in the main shell so the
# pid survives; don't call it in a command substitution).
start_server() {
	log="$1"
	shift
	"$workdir/leaps-serve" "$@" 2>"$log" &
	started_pid=$!
	started_addr=""
	for _ in $(seq 1 100); do
		started_addr=$(sed -n 's/.*addr=\([0-9.]*:[0-9]*\).*/\1/p' "$log" | head -n1)
		[ -n "$started_addr" ] && break
		kill -0 "$started_pid" 2>/dev/null || fail "leaps-serve exited early: $(cat "$log")"
		sleep 0.1
	done
	[ -n "$started_addr" ] || fail "no listen address logged in $log"
}

# open_session <addr>: creates a session for the malicious process.
open_session() {
	curl -fsS -X POST --data-binary @"$session_json" "http://$1/v1/sessions" |
		sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n1
}

say "starting reference server (never interrupted)"
start_server "$workdir/ref.log" -model "$workdir/leaps.model" -addr 127.0.0.1:0 -spool "$workdir/spool-ref"
ref_pid=$started_pid
ref_addr=$started_addr

say "starting test server (will be SIGTERMed mid-session)"
start_server "$workdir/test.log" -model "$workdir/leaps.model" -addr 127.0.0.1:0 -spool "$workdir/spool-test"
test_pid=$started_pid
test_addr=$started_addr

curl -fsS "http://$test_addr/healthz" >/dev/null || fail "/healthz unreachable"
curl -fsS "http://$test_addr/readyz" | grep -q '"ready": true' || fail "/readyz not ready"
say "health probes OK"

ref_sid=$(open_session "$ref_addr")
test_sid=$(open_session "$test_addr")
[ -n "$ref_sid" ] && [ -n "$test_sid" ] || fail "session creation returned no id"
say "sessions open: ref=$ref_sid test=$test_sid"

say "streaming batch A (malicious log) into both servers"
curl -fsS -X POST --data-binary @"$batch_a" \
	"http://$ref_addr/v1/sessions/$ref_sid/events" >"$workdir/ref_a.json"
curl -fsS -X POST --data-binary @"$batch_a" \
	"http://$test_addr/v1/sessions/$test_sid/events" >"$workdir/test_a.json"
grep -q '"first_event"' "$workdir/test_a.json" || fail "batch A produced no verdicts"
grep -q '"malicious": true' "$workdir/test_a.json" || fail "malicious log raised no malicious verdict"
say "batch A verdicts OK"

say "SIGTERM test server; expecting a spooled checkpoint"
kill -TERM "$test_pid"
wait "$test_pid" 2>/dev/null || fail "test server exited non-zero on SIGTERM"
test_pid=""
[ -f "$workdir/spool-test/$test_sid.ckpt" ] || fail "no checkpoint spooled for $test_sid"
[ -f "$workdir/spool-test/$test_sid.json" ] || fail "no spool metadata for $test_sid"
say "checkpoint spooled"

say "restarting test server over the same spool"
start_server "$workdir/test2.log" -model "$workdir/leaps.model" -addr 127.0.0.1:0 -spool "$workdir/spool-test"
test_pid=$started_pid
test_addr=$started_addr
curl -fsS "http://$test_addr/v1/sessions/$test_sid" >"$workdir/restored.json" ||
	fail "restored session $test_sid not addressable"
grep -q '"id": *"'"$test_sid"'"' "$workdir/restored.json" || fail "restored state is for the wrong session"

say "streaming batch B (benign log) into both servers"
curl -fsS -X POST --data-binary @"$batch_b" \
	"http://$ref_addr/v1/sessions/$ref_sid/events" >"$workdir/ref_b.json"
curl -fsS -X POST --data-binary @"$batch_b" \
	"http://$test_addr/v1/sessions/$test_sid/events" >"$workdir/test_b.json"
cmp -s "$workdir/ref_b.json" "$workdir/test_b.json" ||
	fail "restored session's batch-B verdicts differ from the uninterrupted reference"
say "restored verdicts byte-identical to uninterrupted run"

say "checking backpressure: tiny queue must reject the full batch"
start_server "$workdir/bp.log" -model "$workdir/leaps.model" -addr 127.0.0.1:0 -queue-depth 64
bp_pid=$started_pid
bp_addr=$started_addr
bp_sid=$(open_session "$bp_addr")
status=$(curl -s -o "$workdir/bp_body.json" -D "$workdir/bp_headers.txt" \
	-X POST --data-binary @"$batch_a" \
	-w '%{http_code}' "http://$bp_addr/v1/sessions/$bp_sid/events")
[ "$status" = "429" ] || fail "oversubscribed batch got status $status, want 429"
grep -qi '^Retry-After:' "$workdir/bp_headers.txt" || fail "429 response lacks Retry-After"
say "backpressure 429 + Retry-After OK"

say "PASS"
