#!/bin/sh
# End-to-end smoke test of the observability layer: boots leaps-serve,
# injects a W3C traceparent over HTTP and follows the trace ID through
# every exposition surface. Asserts that
#
#   - the response echoes a traceparent with the injected trace ID and
#     a fresh (child) span ID,
#   - /metrics negotiates its format: the plain text scrape is
#     exemplar-free (classic Prometheus parsers reject exemplars) while
#     an Accept: application/openmetrics-text scrape carries the trace
#     ID as an exemplar on a latency histogram bucket and ends in
#     "# EOF"; both pass the in-repo promtool-style linter
#     (scripts/metricslint),
#   - /debug/pprof/ and /debug/flightrecorder respond, and the on-demand
#     flight dump contains the traced request,
#   - a forced autopilot circuit-breaker trip (retraining from a log
#     that does not exist, retries off, breaker threshold 1) dumps the
#     flight recorder to the state dir, and that dump still holds the
#     injected trace ID,
#   - SIGQUIT dumps the flight recorder and a goroutine stack dump
#     without stopping the server.
set -eu

workdir=$(mktemp -d)
srv_pid=""
cleanup() {
	[ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true
	[ -n "$srv_pid" ] && wait "$srv_pid" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

say() { printf 'obs-smoke: %s\n' "$*"; }
fail() {
	say "FAIL: $*"
	exit 1
}

say "building CLIs into $workdir"
go build -o "$workdir" ./cmd/leaps-trace ./cmd/leaps-train ./cmd/leaps-serve ./scripts/metricslint

say "generating dataset with serve wire files"
"$workdir/leaps-trace" -dataset vim_reverse_tcp -out "$workdir" -seed 1 -serve-json -quiet

say "training model and publishing it into the registry"
"$workdir/leaps-train" \
	-benign "$workdir/vim_reverse_tcp_benign.letl" \
	-mixed "$workdir/vim_reverse_tcp_mixed.letl" \
	-model "$workdir/leaps.model" \
	-registry "$workdir/registry" \
	-lambda 8 -sigma2 2 -seed 1 -quiet -telemetry-out none

session_json="$workdir/vim_reverse_tcp_malicious.session.json"
batch="$workdir/vim_reverse_tcp_malicious.events.json"
state_dir="$workdir/registry/autopilot"

# The autopilot is configured to fail on purpose: the benign training
# log does not exist, retries are off and the breaker threshold is 1,
# so the first cycle (triggered by a single verdict window) trips the
# circuit breaker and dumps the flight recorder into the state dir.
say "starting server with a breaker-trip autopilot configuration"
log="$workdir/serve.log"
"$workdir/leaps-serve" \
	-registry "$workdir/registry" -addr 127.0.0.1:0 -spool "$workdir/spool" \
	-autopilot \
	-autopilot-benign "$workdir/no-such-benign.letl" \
	-autopilot-mixed "$workdir/no-such-mixed.letl" \
	-autopilot-trigger 1 -autopilot-interval 200ms \
	-autopilot-retries=-1 -autopilot-breaker 1 \
	2>"$log" &
srv_pid=$!
addr=""
for _ in $(seq 1 100); do
	addr=$(sed -n 's/.*addr=\([0-9.]*:[0-9]*\).*/\1/p' "$log" | head -n1)
	[ -n "$addr" ] && break
	kill -0 "$srv_pid" 2>/dev/null || fail "leaps-serve exited early: $(cat "$log")"
	sleep 0.1
done
[ -n "$addr" ] || fail "no listen address logged in $log"
say "server at $addr"

trace="4bf92f3577b34da6a3ce929d0e0e4736"
parent="00-$trace-00f067aa0ba902b7-01"

sid=$(curl -fsS -X POST --data-binary @"$session_json" "http://$addr/v1/sessions" |
	sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n1)
[ -n "$sid" ] || fail "session creation returned no id"

say "ingesting events with injected traceparent $parent"
curl -fsS -D "$workdir/headers.txt" -X POST --data-binary @"$batch" \
	-H "traceparent: $parent" \
	"http://$addr/v1/sessions/$sid/events" >"$workdir/verdicts.json"
grep -q '"first_event"' "$workdir/verdicts.json" || fail "ingest produced no verdicts"

echoed=$(sed -n 's/^[Tt]raceparent: *\(.*\)/\1/p' "$workdir/headers.txt" | tr -d '\r' | head -n1)
case "$echoed" in
00-"$trace"-*) ;;
*) fail "response traceparent '$echoed' does not carry injected trace $trace" ;;
esac
case "$echoed" in
*00f067aa0ba902b7*) fail "response reused the caller's span ID instead of minting a child span" ;;
esac
say "response header carries the trace in a child span: $echoed"

say "checking /metrics: plain text scrape stays exemplar-free and lints clean"
curl -fsS "http://$addr/metrics" >"$workdir/metrics.txt"
grep -q ' # {' "$workdir/metrics.txt" &&
	fail "plain text /metrics carries OpenMetrics exemplars (classic parser would reject them)"
grep -q '^# EOF' "$workdir/metrics.txt" &&
	fail "plain text /metrics carries the OpenMetrics EOF marker"
"$workdir/metricslint" "$workdir/metrics.txt" || fail "metricslint rejected the text /metrics exposition"

say "checking /metrics: OpenMetrics scrape carries the exemplar, lints clean"
curl -fsS -D "$workdir/om-headers.txt" \
	-H 'Accept: application/openmetrics-text; version=1.0.0' \
	"http://$addr/metrics" >"$workdir/metrics-om.txt"
grep -qi '^content-type: *application/openmetrics-text' "$workdir/om-headers.txt" ||
	fail "OpenMetrics scrape did not negotiate the openmetrics content type"
grep -q "trace_id=\"$trace\"" "$workdir/metrics-om.txt" ||
	fail "no OpenMetrics exemplar carries trace $trace"
tail -n1 "$workdir/metrics-om.txt" | grep -q '^# EOF' ||
	fail "OpenMetrics exposition not terminated by # EOF"
"$workdir/metricslint" "$workdir/metrics-om.txt" || fail "metricslint rejected the OpenMetrics exposition"
say "negotiation OK: exemplar only in the OpenMetrics scrape, both lint clean"

say "checking debug surfaces"
curl -fsS "http://$addr/debug/pprof/" >/dev/null || fail "/debug/pprof/ unreachable"
curl -fsS "http://$addr/debug/flightrecorder" >"$workdir/ondemand.json"
grep -q '"reason": "on-demand"' "$workdir/ondemand.json" || fail "on-demand dump has wrong reason"
grep -q "$trace" "$workdir/ondemand.json" || fail "on-demand flight dump lost trace $trace"
say "pprof and on-demand flight dump OK"

say "waiting for the breaker to trip and dump the flight recorder"
dump=""
for _ in $(seq 1 150); do
	dump=$(ls "$state_dir"/flight-breaker-trip-*.json 2>/dev/null | head -n1)
	[ -n "$dump" ] && break
	kill -0 "$srv_pid" 2>/dev/null || fail "server died before the breaker tripped: $(cat "$log")"
	sleep 0.2
done
[ -n "$dump" ] || fail "no breaker-trip flight dump in $state_dir (log: $(tail -5 "$log"))"
grep -q '"reason": "breaker-trip"' "$dump" || fail "dump $dump has wrong reason"
grep -q "$trace" "$dump" || fail "breaker-trip dump $dump lost the ingest trace $trace"
grep -q '"kind": "autopilot"' "$dump" || fail "breaker-trip dump records no autopilot journal transitions"
say "breaker-trip dump carries the trace: $dump"

say "checking SIGQUIT dumps without stopping the server"
kill -QUIT "$srv_pid"
sigquit_dump=""
for _ in $(seq 1 50); do
	sigquit_dump=$(ls "$workdir"/spool/flight-sigquit-*.json 2>/dev/null | head -n1)
	[ -n "$sigquit_dump" ] && break
	sleep 0.1
done
[ -n "$sigquit_dump" ] || fail "SIGQUIT produced no dump in the spool dir"
goroutine_dump=$(ls "$workdir"/spool/goroutines-sigquit-*.txt 2>/dev/null | head -n1)
[ -n "$goroutine_dump" ] || fail "SIGQUIT produced no goroutine stack dump"
grep -q '^goroutine ' "$goroutine_dump" || fail "goroutine dump $goroutine_dump holds no stacks"
curl -fsS "http://$addr/healthz" >/dev/null || fail "server stopped serving after SIGQUIT"
say "SIGQUIT flight and goroutine dumps written, server still up"

say "PASS"
