// Command doclint enforces the repository's godoc conventions:
//
//   - every package under the directories given as arguments must have a
//     package comment on at least one file;
//   - in packages listed via -strict, every exported top-level
//     identifier (type, function, method on an exported type, constant,
//     variable) must have a doc comment.
//
// It exits non-zero listing every violation. Run through
// scripts/doc-lint.sh, which pins the repository's directory set.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
)

func main() {
	strict := flag.String("strict", "", "comma-separated directories whose exported identifiers must all carry doc comments")
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		fmt.Fprintln(os.Stderr, "usage: doclint [-strict dir,dir] root [root...]")
		os.Exit(2)
	}
	var problems []string
	for _, root := range roots {
		dirs, err := goDirs(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		for _, dir := range dirs {
			p, err := lintDir(dir, false)
			if err != nil {
				fmt.Fprintln(os.Stderr, "doclint:", err)
				os.Exit(2)
			}
			problems = append(problems, p...)
		}
	}
	if *strict != "" {
		for _, dir := range strings.Split(*strict, ",") {
			p, err := lintDir(dir, true)
			if err != nil {
				fmt.Fprintln(os.Stderr, "doclint:", err)
				os.Exit(2)
			}
			problems = append(problems, p...)
		}
	}
	// Strict directories are usually also under a root, so the package
	// check can fire twice; report each problem once.
	sort.Strings(problems)
	problems = slices.Compact(problems)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("doclint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// goDirs returns every directory under root holding non-test Go files.
func goDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		seen[filepath.Dir(path)] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for dir := range seen {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// lintDir checks one package directory. With strict set it additionally
// requires doc comments on every exported top-level identifier.
func lintDir(dir string, strict bool) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var problems []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		hasDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasDoc = true
				break
			}
		}
		if !hasDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, name))
		}
		if !strict {
			continue
		}
		exported := exportedTypes(pkg)
		for path, f := range pkg.Files {
			problems = append(problems, lintFile(fset, path, f, exported)...)
		}
	}
	return problems, nil
}

// exportedTypes collects the package's exported type names, so methods on
// unexported types are not held to the exported-doc rule.
func exportedTypes(pkg *ast.Package) map[string]bool {
	out := map[string]bool{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.IsExported() {
					out[ts.Name.Name] = true
				}
			}
		}
	}
	return out
}

// lintFile reports exported top-level identifiers without doc comments.
func lintFile(fset *token.FileSet, path string, f *ast.File, exportedTypes map[string]bool) []string {
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		problems = append(problems, fmt.Sprintf("%s: exported %s %s has no doc comment",
			fset.Position(pos), kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil && !exportedTypes[receiverType(d)] {
				continue
			}
			report(d.Pos(), "function", d.Name.Name)
		case *ast.GenDecl:
			if d.Tok == token.IMPORT {
				continue
			}
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil {
						report(sp.Pos(), "type", sp.Name.Name)
					}
				case *ast.ValueSpec:
					for _, name := range sp.Names {
						// A doc on the grouped decl covers its specs.
						if name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
							report(name.Pos(), "value", name.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// receiverType names the method receiver's base type.
func receiverType(d *ast.FuncDecl) string {
	if len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
